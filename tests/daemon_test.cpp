// Unit tests for the daemon implementations (paper §2.1.2 execution
// models): selection contracts, fairness, adversarial starvation, and
// RNG-draw-order compatibility of the bitmask EnabledView path with the
// legacy materialized-vector path.
#include "core/daemon.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "core/enabled_cache.hpp"
#include "core/graph.hpp"
#include "core/rng.hpp"
#include "orientation/dftno.hpp"

namespace ssno {
namespace {

std::vector<Move> threeNodesEnabled() {
  return {Move{0, 0}, Move{0, 1}, Move{1, 0}, Move{2, 0}};
}

void expectSubsetOnePerNode(const std::vector<Move>& selected,
                            const std::vector<Move>& enabled) {
  ASSERT_FALSE(selected.empty());
  std::set<NodeId> nodes;
  for (const Move& m : selected) {
    EXPECT_TRUE(nodes.insert(m.node).second) << "two moves for one node";
    bool found = false;
    for (const Move& e : enabled) found = found || (e == m);
    EXPECT_TRUE(found) << "selected move was not enabled";
  }
}

TEST(CentralDaemon, SelectsExactlyOne) {
  CentralDaemon d;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto sel = d.select(threeNodesEnabled(), rng);
    EXPECT_EQ(sel.size(), 1u);
    expectSubsetOnePerNode(sel, threeNodesEnabled());
  }
}

TEST(CentralDaemon, EventuallySelectsEveryMove) {
  CentralDaemon d;
  Rng rng(2);
  std::set<std::pair<NodeId, int>> seen;
  for (int i = 0; i < 400; ++i)
    for (const Move& m : d.select(threeNodesEnabled(), rng))
      seen.insert({m.node, m.action});
  EXPECT_EQ(seen.size(), 4u);
}

TEST(DistributedDaemon, NonEmptySubsetOnePerNode) {
  DistributedDaemon d;
  Rng rng(3);
  for (int i = 0; i < 100; ++i)
    expectSubsetOnePerNode(d.select(threeNodesEnabled(), rng),
                           threeNodesEnabled());
}

TEST(DistributedDaemon, SometimesSelectsMultiple) {
  DistributedDaemon d;
  Rng rng(4);
  bool sawMulti = false;
  for (int i = 0; i < 100; ++i)
    sawMulti = sawMulti || d.select(threeNodesEnabled(), rng).size() > 1;
  EXPECT_TRUE(sawMulti);
}

TEST(SynchronousDaemon, SelectsEveryEnabledNode) {
  SynchronousDaemon d;
  Rng rng(5);
  const auto sel = d.select(threeNodesEnabled(), rng);
  EXPECT_EQ(sel.size(), 3u);  // nodes 0, 1, 2
  expectSubsetOnePerNode(sel, threeNodesEnabled());
}

TEST(RoundRobinDaemon, CyclesThroughActionPairs) {
  RoundRobinDaemon d;
  Rng rng(6);
  std::vector<std::pair<NodeId, int>> order;
  for (int i = 0; i < 8; ++i) {
    const Move m = d.select(threeNodesEnabled(), rng).front();
    order.emplace_back(m.node, m.action);
  }
  const std::vector<std::pair<NodeId, int>> want{
      {0, 0}, {0, 1}, {1, 0}, {2, 0}, {0, 0}, {0, 1}, {1, 0}, {2, 0}};
  EXPECT_EQ(order, want);
}

TEST(RoundRobinDaemon, IsWeaklyFairAtActionGranularity) {
  // Every continuously enabled (node, action) pair is served within one
  // sweep — in particular node 0's SECOND action is not starved by its
  // first one.
  RoundRobinDaemon d;
  Rng rng(7);
  std::map<std::pair<NodeId, int>, int> served;
  for (int i = 0; i < 32; ++i) {
    const Move m = d.select(threeNodesEnabled(), rng).front();
    served[{m.node, m.action}]++;
  }
  EXPECT_EQ((served[{0, 0}]), 8);
  EXPECT_EQ((served[{0, 1}]), 8);
  EXPECT_EQ((served[{1, 0}]), 8);
  EXPECT_EQ((served[{2, 0}]), 8);
}

TEST(RoundRobinDaemon, SkipsDisabledPairs) {
  RoundRobinDaemon d;
  Rng rng(8);
  (void)d.select(threeNodesEnabled(), rng);  // serves (0,0)
  // Now only node 2 is enabled: the rotation must jump to it.
  const Move m = d.select({Move{2, 0}}, rng).front();
  EXPECT_EQ(m.node, 2);
}

TEST(AdversarialDaemon, StarvesHighNodesWhileLowEnabled) {
  AdversarialDaemon d;
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    const auto sel = d.select(threeNodesEnabled(), rng);
    ASSERT_EQ(sel.size(), 1u);
    EXPECT_EQ(sel.front().node, 0);  // node 2 never runs
    EXPECT_EQ(sel.front().action, 0);
  }
}

// Every daemon must produce bit-identical selections — and consume the
// RNG identically — whether it reads the bitmask EnabledView or the
// materialized node-major move vector.  Randomized DFTNO configurations
// give dense, multi-action enabled sets (up to 7 actions per node);
// evolving the configuration by the selected moves walks both paths
// through hundreds of distinct enabled sets per topology.
class BitmaskLegacyCompatibility
    : public ::testing::TestWithParam<DaemonKind> {};

TEST_P(BitmaskLegacyCompatibility, SelectionsAndDrawsAreBitIdentical) {
  const DaemonKind kind = GetParam();
  Rng topoRng(0x5E1EC7);
  const std::vector<Graph> graphs = {
      Graph::ring(17), Graph::star(9), Graph::grid(4, 5),
      Graph::randomConnected(24, 0.2, topoRng)};
  for (const Graph& g : graphs) {
    Dftno proto(g);
    Rng scramble(0xD15C0 + static_cast<std::uint64_t>(g.nodeCount()));
    proto.randomize(scramble);
    EnabledCache cache(proto);

    const auto viewDaemon = makeDaemon(kind);
    const auto legacyDaemon = makeDaemon(kind);
    Rng viewRng(42), legacyRng(42);
    std::vector<Move> fromView, fromLegacy, materialized;
    for (int step = 0; step < 400; ++step) {
      const EnabledView& view = cache.refreshView();
      if (view.empty()) break;
      materialized.clear();
      view.appendMoves(materialized);
      ASSERT_EQ(static_cast<int>(materialized.size()), view.moveCount());

      viewDaemon->selectInto(view, viewRng, fromView);
      legacyDaemon->legacySelect(materialized, legacyRng, fromLegacy);
      ASSERT_EQ(fromView, fromLegacy)
          << daemonKindName(kind) << " diverged at step " << step << " (n="
          << g.nodeCount() << ")";
      ASSERT_TRUE(viewRng.engine() == legacyRng.engine())
          << daemonKindName(kind) << " consumed the RNG differently at step "
          << step;
      // Evolve by one of the selected moves (single execution keeps the
      // cache exact without simultaneous-step machinery).
      proto.execute(fromView.front().node, fromView.front().action);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDaemons, BitmaskLegacyCompatibility,
                         ::testing::Values(DaemonKind::kCentral,
                                           DaemonKind::kDistributed,
                                           DaemonKind::kSynchronous,
                                           DaemonKind::kRoundRobin,
                                           DaemonKind::kAdversarial),
                         [](const auto& info) {
                           std::string name = daemonKindName(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// clone() must duplicate fairness state: a cloned round-robin resumes
// the rotation from the original's cursor.
TEST(DaemonClone, RoundRobinCursorIsCopied) {
  RoundRobinDaemon d;
  Rng rng(1);
  (void)d.select(threeNodesEnabled(), rng);  // serves (0,0)
  (void)d.select(threeNodesEnabled(), rng);  // serves (0,1)
  const auto copy = d.clone();
  const Move fromCopy = copy->select(threeNodesEnabled(), rng).front();
  const Move fromOriginal = d.select(threeNodesEnabled(), rng).front();
  EXPECT_EQ(fromCopy, fromOriginal);  // both serve (1,0) next
  EXPECT_EQ(fromCopy, (Move{1, 0}));
}

TEST(MakeDaemon, CoversAllKinds) {
  for (DaemonKind k :
       {DaemonKind::kCentral, DaemonKind::kDistributed,
        DaemonKind::kSynchronous, DaemonKind::kRoundRobin,
        DaemonKind::kAdversarial}) {
    const auto d = makeDaemon(k);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->name(), daemonKindName(k));
  }
}

}  // namespace
}  // namespace ssno
