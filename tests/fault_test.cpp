// Unit tests for transient-fault injection.
#include "core/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

#include "core/graph.hpp"
#include "toy_protocols.hpp"

namespace ssno {
namespace {

TEST(FaultInjector, ScrambleAllReachesNonZeroStates) {
  ZeroProtocol proto(Graph::path(6), 5);
  for (NodeId p = 0; p < 6; ++p) proto.setValue(p, 0);
  FaultInjector inj(proto);
  Rng rng(1);
  inj.scrambleAll(rng);
  bool anyNonZero = false;
  for (NodeId p = 0; p < 6; ++p) anyNonZero = anyNonZero || proto.value(p) != 0;
  EXPECT_TRUE(anyNonZero);  // 5^-6 chance of a false failure
}

TEST(FaultInjector, CorruptKTouchesExactlyKDistinctNodes) {
  ZeroProtocol proto(Graph::ring(10), 50);
  FaultInjector inj(proto);
  Rng rng(2);
  for (int k : {0, 1, 3, 10}) {
    const std::vector<NodeId> victims = inj.corruptK(k, rng);
    EXPECT_EQ(static_cast<int>(victims.size()), k);
    const std::set<NodeId> uniq(victims.begin(), victims.end());
    EXPECT_EQ(static_cast<int>(uniq.size()), k);
    for (NodeId v : victims) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 10);
    }
  }
}

TEST(FaultInjector, CorruptKReturnsVictimsSorted) {
  ZeroProtocol proto(Graph::ring(12), 50);
  FaultInjector inj(proto);
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const std::vector<NodeId> victims = inj.corruptK(7, rng);
    EXPECT_TRUE(std::is_sorted(victims.begin(), victims.end()));
  }
}

TEST(FaultInjector, CorruptKRejectsOutOfRangeCounts) {
  ZeroProtocol proto(Graph::ring(4), 50);
  for (NodeId p = 0; p < 4; ++p) proto.setValue(p, 0);
  FaultInjector inj(proto);
  Rng rng(6);
  for (int bad : {-1, 5, 100}) {
    try {
      (void)inj.corruptK(bad, rng);
      FAIL() << "expected std::invalid_argument for k=" << bad;
    } catch (const std::invalid_argument& e) {
      // The message names both the bad k and the node count.
      const std::string what = e.what();
      EXPECT_NE(what.find(std::to_string(bad)), std::string::npos) << what;
      EXPECT_NE(what.find('4'), std::string::npos) << what;
    }
  }
  // ...and the state was never touched by a rejected call.
  for (NodeId p = 0; p < 4; ++p) EXPECT_EQ(proto.value(p), 0);
}

TEST(FaultInjector, CorruptKLeavesOthersUntouched) {
  ZeroProtocol proto(Graph::path(8), 9);
  for (NodeId p = 0; p < 8; ++p) proto.setValue(p, 0);
  FaultInjector inj(proto);
  Rng rng(3);
  const std::vector<NodeId> victims = inj.corruptK(2, rng);
  const std::set<NodeId> hit(victims.begin(), victims.end());
  for (NodeId p = 0; p < 8; ++p) {
    if (!hit.contains(p)) {
      EXPECT_EQ(proto.value(p), 0);
    }
  }
}

TEST(FaultInjector, CrashResetZeroesLocalState) {
  ZeroProtocol proto(Graph::path(3), 7);
  proto.setValue(1, 5);
  FaultInjector inj(proto);
  inj.crashReset(1);
  EXPECT_EQ(proto.value(1), 0);
}

TEST(FaultInjector, CorruptNodeStaysInDomain) {
  ZeroProtocol proto(Graph::path(3), 4);
  FaultInjector inj(proto);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    inj.corruptNode(0, rng);
    EXPECT_GE(proto.value(0), 0);
    EXPECT_LT(proto.value(0), 4);
  }
}

}  // namespace
}  // namespace ssno
