// Adversarial input for serve/json (the protocol's parse surface): a
// client can send any bytes it likes, so every malformed, truncated,
// deeply-nested, or huge-token line must die as std::invalid_argument
// with a byte offset — never UB, a stack overflow, or unbounded memory.
#include "serve/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace ssno::serve {
namespace {

TEST(JsonFuzzish, MalformedInputsFailWithByteOffsets) {
  const struct { const char* name; std::string text; } kCases[] = {
      {"empty", ""},
      {"whitespace only", "   \t "},
      {"bare garbage", "zzz"},
      {"unterminated object", "{\"a\": 1"},
      {"unterminated array", "[1, 2"},
      {"unterminated string", "\"abc"},
      {"unterminated escape", "\"abc\\"},
      {"bad escape", "\"ab\\q\""},
      {"truncated unicode escape", "\"\\u00\""},
      {"bad unicode digit", "\"\\u00zz\""},
      {"surrogate escape", "\"\\ud800\""},
      {"raw control char", std::string("\"a\x01b\"")},
      {"missing colon", "{\"a\" 1}"},
      {"missing comma", "[1 2]"},
      {"trailing comma object", "{\"a\": 1,}"},
      {"trailing comma array", "[1,]"},
      {"non-string key", "{1: 2}"},
      {"bad number", "1.2.3"},
      {"lone minus", "-"},
      {"trailing bytes", "{} x"},
      {"two values", "1 2"},
      {"truncated true", "tru"},
      {"null then junk", "nullx"},
  };
  for (const auto& c : kCases) {
    try {
      (void)JsonValue::parse(c.text);
      FAIL() << c.name << ": parse accepted " << c.text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos)
          << c.name << " -> " << e.what();
    }
  }
}

TEST(JsonFuzzish, DeepNestingIsAByteOffsetErrorNotAStackOverflow) {
  for (const char open : {'[', '{'}) {
    std::string bomb(100000, open);
    if (open == '{') {
      // Objects need keys to recurse: {"a":{"a":{... .
      bomb.clear();
      for (int i = 0; i < 100000; ++i) bomb += "{\"a\":";
    }
    try {
      (void)JsonValue::parse(bomb);
      FAIL() << "nesting bomb parsed";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("nesting too deep"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(JsonFuzzish, NestingJustBelowTheCapStillParses) {
  const int depth = 127;
  std::string ok;
  for (int i = 0; i < depth; ++i) ok += '[';
  ok += '1';
  for (int i = 0; i < depth; ++i) ok += ']';
  EXPECT_NO_THROW((void)JsonValue::parse(ok));
}

TEST(JsonFuzzish, HugeTokensAreBoundedByTheirInput) {
  // A huge string or number allocates proportionally to the input —
  // never more — and round-trips or fails cleanly.
  const std::string big(1 << 20, 'x');
  const auto v = JsonValue::parse("\"" + big + "\"");
  EXPECT_EQ(v.asString(), big);

  const std::string digits = "1" + std::string(100000, '0');
  // Overflows double to inf — from_chars reports out-of-range, which
  // must surface as the usual byte-offset error.
  try {
    (void)JsonValue::parse(digits);
    SUCCEED();  // an implementation may also round to +inf
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
  }
}

TEST(JsonFuzzish, ProtocolShapedLinesStillWork) {
  const auto v = JsonValue::parse(
      R"({"verb":"submit","target":"dftc/central/ring:64","trials":3})");
  ASSERT_NE(v.find("verb"), nullptr);
  EXPECT_EQ(v.find("verb")->asString(), "submit");
  ASSERT_NE(v.find("trials"), nullptr);
  EXPECT_EQ(v.find("trials")->asNumber(), 3.0);
}

}  // namespace
}  // namespace ssno::serve
