// Unit tests for the exp topology generators: counts, degree bounds,
// connectivity, the parse/name round-trip, and determinism of random
// families under a fixed seed.
#include "exp/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ssno::exp {
namespace {

std::vector<std::vector<NodeId>> adjacency(const Graph& g) {
  std::vector<std::vector<NodeId>> adj;
  for (NodeId p = 0; p < g.nodeCount(); ++p)
    adj.emplace_back(g.neighbors(p).begin(), g.neighbors(p).end());
  return adj;
}

TEST(ChordalRing, CountsAndDegrees) {
  // 16 ring edges + 16 per chord offset (2 and 5 overlap neither each
  // other nor the ring).
  const Graph g = chordalRing(16, {2, 5});
  EXPECT_EQ(g.nodeCount(), 16);
  EXPECT_EQ(g.edgeCount(), 16 * 3);
  EXPECT_TRUE(g.isConnected());
  for (NodeId p = 0; p < 16; ++p) EXPECT_EQ(g.degree(p), 6);
}

TEST(ChordalRing, HalfwayChordDeduplicated) {
  // Offset n/2 produces each chord twice; only n/2 distinct edges remain.
  const Graph g = chordalRing(8, {4});
  EXPECT_EQ(g.edgeCount(), 8 + 4);
  for (NodeId p = 0; p < 8; ++p) EXPECT_EQ(g.degree(p), 3);
}

TEST(ChordalRing, ComplementaryOffsetsCoincide) {
  const Graph a = chordalRing(10, {3});
  const Graph b = chordalRing(10, {7});
  EXPECT_EQ(a.edgeCount(), b.edgeCount());
  EXPECT_EQ(a.edgeCount(), 20);
}

TEST(ChordalRing, RejectsBadOffsets) {
  EXPECT_THROW(chordalRing(8, {1}), std::invalid_argument);
  EXPECT_THROW(chordalRing(8, {7}), std::invalid_argument);
  EXPECT_THROW(chordalRing(8, {}), std::invalid_argument);
  EXPECT_THROW(chordalRing(2, {2}), std::invalid_argument);
}

TEST(TopologySpec, ParseBuildsExpectedSizes) {
  EXPECT_EQ(TopologySpec::parse("ring:32").build().nodeCount(), 32);
  EXPECT_EQ(TopologySpec::parse("path:7").build().edgeCount(), 6);
  EXPECT_EQ(TopologySpec::parse("star:9").build().maxDegree(), 8);
  EXPECT_EQ(TopologySpec::parse("complete:6").build().edgeCount(), 15);
  EXPECT_EQ(TopologySpec::parse("hypercube:4").build().nodeCount(), 16);
  EXPECT_EQ(TopologySpec::parse("grid:4x8").build().nodeCount(), 32);
  EXPECT_EQ(TopologySpec::parse("kary:15x2").build().edgeCount(), 14);
  EXPECT_EQ(TopologySpec::parse("caterpillar:5x3").build().nodeCount(), 20);
  EXPECT_EQ(TopologySpec::parse("lollipop:4x2").build().nodeCount(), 6);
  EXPECT_EQ(TopologySpec::parse("chordring:12:3").build().edgeCount(), 24);
}

TEST(TopologySpec, SquareShorthandForGridAndTorus) {
  const Graph torus = TopologySpec::parse("torus:16").build();
  EXPECT_EQ(torus.nodeCount(), 16);
  for (NodeId p = 0; p < 16; ++p) EXPECT_EQ(torus.degree(p), 4);
  EXPECT_EQ(TopologySpec::parse("grid:9").build().nodeCount(), 9);
}

TEST(DRegularRandom, DegreesConnectivityAndDeterminism) {
  for (const auto& [n, d] : {std::pair{8, 3}, {12, 4}, {20, 3}, {9, 4},
                             {6, 5}, {2, 1}}) {
    const Graph g = dRegularRandom(n, d, 42);
    EXPECT_EQ(g.nodeCount(), n) << n << "," << d;
    EXPECT_EQ(g.edgeCount(), n * d / 2) << n << "," << d;
    for (NodeId p = 0; p < n; ++p) EXPECT_EQ(g.degree(p), d) << n << "," << d;
    EXPECT_TRUE(g.isConnected()) << n << "," << d;
    EXPECT_EQ(adjacency(g), adjacency(dRegularRandom(n, d, 42)));
  }
  EXPECT_NE(adjacency(dRegularRandom(20, 3, 1)),
            adjacency(dRegularRandom(20, 3, 2)));
}

TEST(DRegularRandom, RejectsInfeasibleParameters) {
  EXPECT_THROW(dRegularRandom(7, 3, 0), std::invalid_argument);  // n*d odd
  EXPECT_THROW(dRegularRandom(4, 4, 0), std::invalid_argument);  // d >= n
  EXPECT_THROW(dRegularRandom(6, 1, 0), std::invalid_argument);  // matching
  EXPECT_THROW(dRegularRandom(1, 0, 0), std::invalid_argument);
}

TEST(PowerLawTree, IsATreeAndAlphaShapesDegrees) {
  const Graph g = powerLawTree(200, 1.0, 5);
  EXPECT_EQ(g.nodeCount(), 200);
  EXPECT_EQ(g.edgeCount(), 199);
  EXPECT_TRUE(g.isConnected());
  EXPECT_EQ(adjacency(g), adjacency(powerLawTree(200, 1.0, 5)));
  // Strong preferential attachment concentrates far more mass on the
  // biggest hub than uniform attachment (alpha = 0).
  const Graph hubby = powerLawTree(400, 3.0, 7);
  const Graph uniform = powerLawTree(400, 0.0, 7);
  EXPECT_GT(hubby.maxDegree(), uniform.maxDegree());
}

TEST(TopologySpec, AllFamiliesConnected) {
  for (const char* text :
       {"ring:11", "path:5", "star:6", "complete:5", "hypercube:3",
        "grid:3x5", "torus:3x4", "kary:13x3", "caterpillar:4x2",
        "lollipop:5x4", "rtree:30:9", "er:25:0.08:4", "chordring:15:2,6",
        "dreg:14:3:8", "plaw:25:1.5:3"}) {
    const Graph g = TopologySpec::parse(text).build();
    EXPECT_TRUE(g.isConnected()) << text;
    EXPECT_EQ(g.root(), 0) << text;
  }
}

TEST(TopologySpec, NameRoundTrips) {
  for (const char* text :
       {"ring:32", "grid:4x8", "torus:5x5", "kary:40x3", "rtree:30:9",
        "er:25:0.08:4", "chordring:15:2,6", "dreg:16:4:9",
        "plaw:30:2.5:4"}) {
    const TopologySpec spec = TopologySpec::parse(text);
    EXPECT_EQ(TopologySpec::parse(spec.name()), spec) << text;
  }
}

TEST(TopologySpec, NameRoundTripsAwkwardProbability) {
  // 0.1 + 0.2 has no short decimal form; name() must still render a
  // string that parses back to the identical double (and thus graph).
  TopologySpec spec;
  spec.family = TopologyFamily::kRandomConnected;
  spec.a = 20;
  spec.p = 0.1 + 0.2;
  spec.seed = 11;
  const TopologySpec reparsed = TopologySpec::parse(spec.name());
  EXPECT_EQ(reparsed, spec);
  EXPECT_EQ(adjacency(reparsed.build()), adjacency(spec.build()));
}

TEST(TopologySpec, RandomFamiliesDeterministicUnderFixedSeed) {
  for (const char* text : {"rtree:40:123", "er:30:0.1:77"}) {
    const Graph a = TopologySpec::parse(text).build();
    const Graph b = TopologySpec::parse(text).build();
    EXPECT_EQ(adjacency(a), adjacency(b)) << text;
  }
}

TEST(TopologySpec, DifferentSeedsDifferentGraphs) {
  const Graph a = TopologySpec::parse("rtree:40:1").build();
  const Graph b = TopologySpec::parse("rtree:40:2").build();
  EXPECT_NE(adjacency(a), adjacency(b));
}

TEST(TopologySpec, RejectsMalformedSpecs) {
  EXPECT_THROW(TopologySpec::parse("ring"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("ring:"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("ring:x"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("ring:2"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("bogus:5"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("grid:7"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("torus:2x9"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("er:10:1.5"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("chordring:8:1"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("rtree:10:5junk"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("rtree:10:-1"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("er:10:0.1:9x"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("dreg:7:3"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("dreg:8"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("plaw:10:9.5"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("plaw:10"), std::invalid_argument);
  // Absurd sizes are rejected up front, not attempted (no int overflow,
  // no multi-GB allocations).
  EXPECT_THROW(TopologySpec::parse("grid:65536x65536"),
               std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("grid:-9"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("complete:100000"),
               std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("er:100000:0.5"), std::invalid_argument);
}

}  // namespace
}  // namespace ssno::exp
