// Unit tests for the ExperimentRunner: thread-count independence of the
// aggregated statistics, failed-trial accounting, the scenario registry,
// and the report emitters.
#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>

#include "exp/report.hpp"
#include "exp/scenario.hpp"

namespace ssno::exp {
namespace {

void expectSameSummary(const Summary& a, const Summary& b,
                       const std::string& what) {
  EXPECT_EQ(a.count, b.count) << what;
  EXPECT_EQ(a.min, b.min) << what;
  EXPECT_EQ(a.max, b.max) << what;
  EXPECT_EQ(a.mean, b.mean) << what;
  EXPECT_EQ(a.stddev, b.stddev) << what;
  EXPECT_EQ(a.p50, b.p50) << what;
  EXPECT_EQ(a.p95, b.p95) << what;
}

void expectSameResult(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.nodeCount, b.nodeCount);
  EXPECT_EQ(a.edgeCount, b.edgeCount);
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.failedTrials, b.failedTrials);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (const auto& [name, summary] : a.metrics) {
    ASSERT_TRUE(b.metrics.count(name)) << name;
    expectSameSummary(summary, b.metrics.at(name), name);
  }
}

TEST(ExperimentRunner, StnoResultsIdenticalAcrossThreadCounts) {
  Scenario s = parseScenario("stno/distributed/ring:12");
  s.trials = 8;
  s.seed = 0xFEED;
  const ScenarioResult one = ExperimentRunner(1).run(s);
  EXPECT_EQ(one.failedTrials, 0);
  EXPECT_EQ(one.metric("tree_moves").count, 8);
  for (int threads : {2, 4, 8}) {
    const ScenarioResult many = ExperimentRunner(threads).run(s);
    expectSameResult(one, many);
  }
}

TEST(ExperimentRunner, DftnoResultsIdenticalAcrossThreadCounts) {
  Scenario s = parseScenario("dftno/round-robin/grid:3x3");
  s.trials = 6;
  s.seed = 0xD15C;
  const ScenarioResult one = ExperimentRunner(1).run(s);
  EXPECT_EQ(one.failedTrials, 0);
  EXPECT_GT(one.metric("overlay_moves").mean, 0);
  expectSameResult(one, ExperimentRunner(5).run(s));
}

TEST(ExperimentRunner, TrialSeedsAreDecorrelatedAndThreadFree) {
  std::set<std::uint64_t> seeds;
  for (int t = 0; t < 100; ++t) seeds.insert(trialSeed(7, t));
  EXPECT_EQ(seeds.size(), 100u);  // no collisions among sibling trials
  EXPECT_EQ(trialSeed(7, 3), trialSeed(7, 3));
  EXPECT_NE(trialSeed(7, 3), trialSeed(8, 3));
}

TEST(ExperimentRunner, ExhaustedBudgetCountsFailedTrials) {
  Scenario s = parseScenario("stno/distributed/ring:12");
  s.trials = 4;
  s.budget = 3;  // far below any stabilization cost
  const ScenarioResult r = ExperimentRunner(2).run(s);
  EXPECT_EQ(r.failedTrials, 4);
  EXPECT_TRUE(r.metrics.empty());
  EXPECT_EQ(r.metric("tree_moves").count, 0);
}

TEST(ExperimentRunner, RunOnGraphUsesProvidedGraph) {
  Scenario s;
  s.protocol = ProtocolKind::kStnoFixedTree;
  s.daemon = DaemonKind::kSynchronous;
  s.trials = 3;
  const Graph g = Graph::lollipop(4, 3);
  const ScenarioResult r = ExperimentRunner(1).runOnGraph(s, g);
  EXPECT_EQ(r.nodeCount, g.nodeCount());
  EXPECT_EQ(r.edgeCount, g.edgeCount());
  EXPECT_EQ(r.failedTrials, 0);
  EXPECT_EQ(r.metric("overlay_rounds").count, 3);
}

TEST(ExperimentRunner, ChurnReportsAvailability) {
  Scenario s = parseScenario("dftno-churn/round-robin/grid:3x3");
  s.trials = 2;
  s.budget = 2'000;  // churn horizon
  s.faultRate = 0.002;
  const ScenarioResult r = ExperimentRunner(2).run(s);
  EXPECT_EQ(r.failedTrials, 0);
  const Summary avail = r.metric("availability");
  EXPECT_EQ(avail.count, 2);
  EXPECT_GE(avail.min, 0.0);
  EXPECT_LE(avail.max, 1.0);
  expectSameResult(r, ExperimentRunner(1).run(s));
}

TEST(ExperimentRunner, RejectsNonPositiveTrials) {
  Scenario s = parseScenario("stno/distributed/ring:12");
  s.trials = 0;
  EXPECT_THROW((void)ExperimentRunner(1).run(s), std::invalid_argument);
}

TEST(ScenarioRegistry, ParsesTriples) {
  const Scenario s = parseScenario("dftno/round-robin/chordring:16:2,5");
  EXPECT_EQ(s.protocol, ProtocolKind::kDftno);
  EXPECT_EQ(s.daemon, DaemonKind::kRoundRobin);
  EXPECT_EQ(s.topology.family, TopologyFamily::kChordalRing);
  EXPECT_EQ(s.topology.build().nodeCount(), 16);
}

TEST(ScenarioRegistry, ChurnTriplesDefaultToStepHorizon) {
  EXPECT_EQ(parseScenario("dftno-churn/round-robin/grid:3x3").budget,
            kDefaultChurnHorizon);
  EXPECT_EQ(parseScenario("baseline-churn/central/ring:8").budget,
            kDefaultChurnHorizon);
  EXPECT_EQ(parseScenario("stno/central/ring:8").budget, Scenario{}.budget);
}

TEST(ScenarioRegistry, RejectsMalformedNames) {
  EXPECT_THROW(parseScenario("stno"), std::invalid_argument);
  EXPECT_THROW(parseScenario("stno/distributed"), std::invalid_argument);
  EXPECT_THROW(parseScenario("nope/central/ring:8"), std::invalid_argument);
  EXPECT_THROW(parseScenario("stno/nope/ring:8"), std::invalid_argument);
  EXPECT_THROW(parseScenario("stno/central/ring:two"),
               std::invalid_argument);
}

TEST(ScenarioRegistry, ParsesModelCheckTargets) {
  const Scenario s = parseScenario("model-check:dftc/central/path:3");
  EXPECT_EQ(s.protocol, ProtocolKind::kModelCheck);
  EXPECT_EQ(s.mcTarget, McTarget::kDftc);
  const Scenario f = parseScenario("model-check:dftc-fault/central/ring:8");
  EXPECT_EQ(f.mcTarget, McTarget::kDftcFault);
  EXPECT_THROW(parseScenario("model-check:nope/central/path:3"),
               std::invalid_argument);
  EXPECT_THROW(parseScenario("dftno:dftc/central/path:3"),
               std::invalid_argument);
}

TEST(ScenarioFile, ParsesLinesCommentsAndOverrides) {
  std::istringstream in(
      "# a comment line\n"
      "\n"
      "dftno round-robin ring:16 trials=5 seed=7 budget=1000\n"
      "dftno-churn round-robin grid:3x4 rate=0.002\n"
      "dftno-recovery central grid:3x3 k=4\n"
      "model-check:dftc central path:3 mc-threads=2\n");
  const std::vector<Scenario> scenarios = loadScenarios(in);
  ASSERT_EQ(scenarios.size(), 4u);
  EXPECT_EQ(scenarios[0].name, "dftno/round-robin/ring:16");
  EXPECT_EQ(scenarios[0].trials, 5);
  EXPECT_EQ(scenarios[0].seed, 7u);
  EXPECT_EQ(scenarios[0].budget, 1000);
  EXPECT_EQ(scenarios[1].faultRate, 0.002);
  EXPECT_EQ(scenarios[1].budget, kDefaultChurnHorizon);
  EXPECT_EQ(scenarios[2].faultK, 4);
  EXPECT_EQ(scenarios[3].protocol, ProtocolKind::kModelCheck);
  EXPECT_EQ(scenarios[3].mcThreads, 2);
}

TEST(ScenarioFile, RejectsMalformedLinesWithLineNumbers) {
  auto expectThrowWith = [](const char* text, const char* needle) {
    std::istringstream in(text);
    try {
      (void)loadScenarios(in);
      FAIL() << "expected invalid_argument for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expectThrowWith("dftno round-robin\n", "line 1");
  expectThrowWith("# ok\nnope central ring:8\n", "line 2");
  expectThrowWith("dftno central ring:8 trials\n", "key=value");
  expectThrowWith("dftno central ring:8 bogus=3\n", "unknown key");
  expectThrowWith("dftno central ring:8 trials=x\n", "bad value");
  expectThrowWith("dftno central ring:8 budget=1e6\n", "trailing junk");
  expectThrowWith("dftno central ring:8 trials=3x\n", "trailing junk");
  expectThrowWith("dftno central ring:8 trials=0\n", "positive");
}

TEST(ScenarioRegistry, NewGeneratorsUsableFromSimulationAndModelCheck) {
  // dreg/plaw topologies drive both a simulation trial and a
  // model-check trial through the same TopologySpec grammar.
  Scenario sim = parseScenario("dftc/round-robin/dreg:8:3:5");
  sim.trials = 1;
  const ScenarioResult simRes = ExperimentRunner(1).run(sim);
  EXPECT_EQ(simRes.nodeCount, 8);
  EXPECT_EQ(simRes.failedTrials, 0);

  Scenario check = parseScenario("model-check:dftc/central/plaw:4:1:3");
  check.trials = 1;
  check.mcThreads = 2;
  const ScenarioResult checkRes = ExperimentRunner(1).run(check);
  EXPECT_EQ(checkRes.failedTrials, 0);
  EXPECT_EQ(checkRes.metric("verdicts_agree").mean, 1.0);
}

TEST(ScenarioRegistry, PresetsResolveAndAreNonEmpty) {
  for (const std::string& name : presetNames()) {
    const std::vector<Scenario> scenarios = resolve(name);
    EXPECT_FALSE(scenarios.empty()) << name;
    for (const Scenario& s : scenarios) EXPECT_GT(s.trials, 0) << name;
  }
  EXPECT_EQ(resolve("stno/central/ring:8").size(), 1u);
}

TEST(Report, CsvAndJsonCarryFailureCounts) {
  Scenario s = parseScenario("stno/synchronous/path:6");
  s.trials = 3;
  s.seed = 5;
  Scenario failing = s;
  failing.name = "stno/synchronous/path:6#tiny-budget";
  failing.budget = 2;
  const std::vector<ScenarioResult> results =
      ExperimentRunner(2).runAll({s, failing});

  const std::string csv = toCsv(results);
  EXPECT_NE(csv.find(csvHeader()), std::string::npos);
  EXPECT_NE(csv.find("tree_moves"), std::string::npos);
  // The failing scenario emits a row with failed_trials == trials.
  EXPECT_NE(csv.find("#tiny-budget,stno,synchronous,path:6,6,5,3,3"),
            std::string::npos);

  const std::string json = toJson(results);
  EXPECT_NE(json.find("\"failed_trials\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"failed_trials\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"overlay_rounds\""), std::string::npos);
}

TEST(Report, CsvQuotesFieldsContainingCommas) {
  Scenario s = parseScenario("dftno/central/chordring:12:2,4");
  s.trials = 1;
  s.budget = 10;  // converges or not — only the row shape matters here
  const std::string csv = toCsv(ExperimentRunner(1).runAll({s}));
  EXPECT_NE(csv.find("\"dftno/central/chordring:12:2,4\""),
            std::string::npos);
  EXPECT_NE(csv.find("\"chordring:12:2,4\""), std::string::npos);
  // Every data row must have exactly as many (unquoted) commas as the
  // header.
  const auto columns = [](const std::string& line) {
    int cols = 1;
    bool quoted = false;
    for (char c : line) {
      if (c == '"') quoted = !quoted;
      if (c == ',' && !quoted) ++cols;
    }
    return cols;
  };
  std::istringstream lines(csv);
  std::string header, row;
  std::getline(lines, header);
  while (std::getline(lines, row))
    EXPECT_EQ(columns(row), columns(header)) << row;
}

TEST(Report, JsonIsDeterministic) {
  Scenario s = parseScenario("stno-fixed-tree/synchronous/star:8");
  s.trials = 4;
  const std::vector<ScenarioResult> a = ExperimentRunner(1).runAll({s});
  const std::vector<ScenarioResult> b = ExperimentRunner(3).runAll({s});
  EXPECT_EQ(toJson(a), toJson(b));
  EXPECT_EQ(toCsv(a), toCsv(b));
}

}  // namespace
}  // namespace ssno::exp
