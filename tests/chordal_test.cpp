// Unit tests for the chordal sense-of-direction math and the SP_NO
// specification checkers (paper §2.2, §2.3, Figure 2.2.1).
#include "orientation/chordal.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/graph.hpp"

namespace ssno {
namespace {

TEST(ChordalDistance, Basics) {
  EXPECT_EQ(chordalDistance(3, 1, 5), 2);
  EXPECT_EQ(chordalDistance(1, 3, 5), 3);  // wraps
  EXPECT_EQ(chordalDistance(0, 0, 5), 0);
  EXPECT_EQ(chordalDistance(0, 4, 5), 1);
}

Orientation canonicalRing(int n) {
  const static Graph* g = nullptr;
  static std::unique_ptr<Graph> holder;
  holder = std::make_unique<Graph>(Graph::ring(n));
  g = holder.get();
  std::vector<int> names(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) names[static_cast<std::size_t>(i)] = i;
  return inducedChordalOrientation(*g, names, n);
}

TEST(InducedOrientation, SatisfiesFullSpec) {
  const Orientation o = canonicalRing(7);
  EXPECT_TRUE(satisfiesSP1(o));
  EXPECT_TRUE(satisfiesSP2(o));
  EXPECT_TRUE(satisfiesSpec(o));
}

TEST(InducedOrientation, RingLabelsAreOneAndNMinusOne) {
  const Orientation o = canonicalRing(5);
  // Node i has successor i+1 (label N−1 toward it: (i − (i+1)) mod 5 = 4)
  // and predecessor i−1 (label 1).
  for (NodeId p = 0; p < 5; ++p) {
    std::multiset<int> labels;
    for (Port l = 0; l < 2; ++l) labels.insert(o.labelAt(p, l));
    EXPECT_EQ(labels, (std::multiset<int>{1, 4}));
  }
}

TEST(SP1, RejectsDuplicateNames) {
  const Graph g = Graph::path(3);
  Orientation o = inducedChordalOrientation(g, {0, 1, 1}, 3);
  EXPECT_FALSE(satisfiesSP1(o));
}

TEST(SP1, RejectsOutOfRangeNames) {
  const Graph g = Graph::path(3);
  Orientation o = inducedChordalOrientation(g, {0, 1, 5}, 3);
  EXPECT_FALSE(satisfiesSP1(o));
}

TEST(SP2, RejectsWrongLabel) {
  const Graph g = Graph::path(3);
  Orientation o = inducedChordalOrientation(g, {0, 1, 2}, 3);
  o.labelAt(0, 0) = (o.labelAt(0, 0) + 1) % 3;
  EXPECT_TRUE(satisfiesSP1(o));
  EXPECT_FALSE(satisfiesSP2(o));
}

TEST(LocalOrientation, UniqueNamesGiveLocallyUniqueLabels) {
  // The paper's §2.3 remark: SP1 guarantees local orientation of the
  // labels computed per SP2.
  const Graph g = Graph::complete(6);
  std::vector<int> names{3, 0, 5, 1, 4, 2};
  const Orientation o = inducedChordalOrientation(g, names, 6);
  EXPECT_TRUE(isLocallyOriented(o));
}

TEST(LocalOrientation, DetectsDuplicateLabels) {
  const Graph g = Graph::path(3);
  Orientation o = inducedChordalOrientation(g, {0, 1, 2}, 3);
  // Force node 1's two labels equal.
  o.labelAt(1, 0) = o.labelAt(1, 1);
  EXPECT_FALSE(isLocallyOriented(o));
}

TEST(EdgeSymmetry, ChordalLabelsAreInverses) {
  // §2.2: if the link is labeled d at p, it is labeled N−d at q.
  const Graph g = Graph::figure221();
  const Orientation o = inducedChordalOrientation(g, {0, 1, 2, 3, 4}, 5);
  EXPECT_TRUE(hasEdgeSymmetry(o));
  EXPECT_TRUE(isLocallySymmetric(o));
  // Check one pair explicitly: edge 0-2 (the chord).
  const Port at0 = g.portOf(0, 2);
  const Port at2 = g.portOf(2, 0);
  EXPECT_EQ(o.labelAt(0, at0), 3);  // (0−2) mod 5
  EXPECT_EQ(o.labelAt(2, at2), 2);  // (2−0) mod 5
}

TEST(Psi, SuccessorWalksTheCycle) {
  const Orientation o = canonicalRing(5);
  NodeId cur = 0;
  std::vector<NodeId> walk;
  for (int i = 0; i < 5; ++i) {
    walk.push_back(cur);
    cur = psiSuccessor(o, cur);
  }
  EXPECT_EQ(cur, 0);  // ψ^N = identity
  EXPECT_EQ(walk, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(Delta, MatchesEdgeLabelsOnEdges) {
  // §2.2: π_p(p,q) = δ(p,q) for a chordal labeling.
  const Graph g = Graph::figure221();
  const Orientation o = inducedChordalOrientation(g, {2, 3, 4, 0, 1}, 5);
  for (NodeId p = 0; p < g.nodeCount(); ++p)
    for (Port l = 0; l < g.degree(p); ++l)
      EXPECT_EQ(o.labelAt(p, l), deltaDistance(o, g.neighborAt(p, l), p));
}

TEST(Render, MentionsEveryNode) {
  const Orientation o = canonicalRing(4);
  const std::string text = renderOrientation(o);
  for (NodeId p = 0; p < 4; ++p)
    EXPECT_NE(text.find("node " + std::to_string(p)), std::string::npos);
}

}  // namespace
}  // namespace ssno
