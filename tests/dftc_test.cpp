// Behavioral tests for the self-stabilizing depth-first token circulation
// substrate: clean-round semantics, deterministic DFS order, legitimacy
// orbit, convergence from arbitrary states, fairness of visits.
#include "dftc/dftc.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include <map>
#include <vector>

#include "core/daemon.hpp"
#include "core/graph.hpp"
#include "core/scheduler.hpp"
#include "sptree/dfs_tree.hpp"

namespace ssno {
namespace {

/// Runs the deterministic legitimate execution for `rounds` full rounds
/// starting from the clean boundary, recording Forward events per round.

std::string daemonTag(DaemonKind kind) {
  std::string s = daemonKindName(kind);
  s.erase(std::remove(s.begin(), s.end(), '-'), s.end());
  return s;
}

std::vector<std::vector<NodeId>> cleanRounds(Dftc& dftc, int rounds) {
  dftc.resetClean();
  std::vector<std::vector<NodeId>> visits;
  int roundIdx = -1;
  TokenHooks hooks;
  hooks.onRoundStart = [&](NodeId) {
    ++roundIdx;
    if (roundIdx < rounds) visits.emplace_back();
  };
  hooks.onForward = [&](NodeId p, NodeId) {
    if (roundIdx >= 0 && roundIdx < rounds) visits.back().push_back(p);
  };
  dftc.setHooks(std::move(hooks));
  while (roundIdx < rounds) {
    const auto moves = dftc.enabledMoves();
    EXPECT_EQ(moves.size(), 1u) << "legitimate execution must be deterministic";
    if (moves.size() != 1u) break;
    dftc.execute(moves.front().node, moves.front().action);
  }
  dftc.setHooks(TokenHooks{});
  return visits;
}

TEST(DftcCleanRound, VisitsEveryNodeExactlyOnce) {
  for (auto graph : {Graph::ring(6), Graph::path(5), Graph::star(5),
                     Graph::complete(4), Graph::figure311()}) {
    Dftc dftc(graph);
    const auto rounds = cleanRounds(dftc, 3);
    ASSERT_EQ(rounds.size(), 3u);
    for (const auto& round : rounds) {
      EXPECT_EQ(static_cast<int>(round.size()), graph.nodeCount() - 1)
          << "every non-root node is forwarded to exactly once";
      std::map<NodeId, int> count;
      for (NodeId p : round) count[p]++;
      for (const auto& [p, c] : count) EXPECT_EQ(c, 1) << "node " << p;
    }
  }
}

TEST(DftcCleanRound, OrderIsDeterministicAcrossRounds) {
  Dftc dftc(Graph::figure311());
  const auto rounds = cleanRounds(dftc, 4);
  for (std::size_t i = 1; i < rounds.size(); ++i)
    EXPECT_EQ(rounds[i], rounds[0]);
}

TEST(DftcCleanRound, OrderMatchesPortOrderDfs) {
  for (auto graph : {Graph::ring(5), Graph::figure311(), Graph::grid(2, 3),
                     Graph::complete(4)}) {
    Dftc dftc(graph);
    const auto rounds = cleanRounds(dftc, 1);
    const std::vector<int> pre = portOrderDfsPreorder(graph);
    // Forward order must match preorder: the k-th forwarded node has
    // preorder number k (the root is number 0 and is not forwarded to).
    for (std::size_t k = 0; k < rounds[0].size(); ++k)
      EXPECT_EQ(pre[static_cast<std::size_t>(rounds[0][k])],
                static_cast<int>(k) + 1);
  }
}

TEST(DftcCleanRound, Figure311VisitOrder) {
  // Figure 3.1.1: r(0) forwards to b(2), then d(4), then c(3), then a(1).
  Dftc dftc(Graph::figure311());
  const auto rounds = cleanRounds(dftc, 1);
  EXPECT_EQ(rounds[0], (std::vector<NodeId>{2, 4, 3, 1}));
}

TEST(DftcOrbit, CleanBoundaryIsLegitimate) {
  Dftc dftc(Graph::ring(4));
  dftc.resetClean();
  EXPECT_TRUE(dftc.isLegitimate());
}

TEST(DftcOrbit, LegitimacyIsClosedUnderExecution) {
  Dftc dftc(Graph::grid(2, 3));
  dftc.resetClean();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(dftc.isLegitimate()) << "at move " << i;
    const auto moves = dftc.enabledMoves();
    ASSERT_FALSE(moves.empty());
    dftc.execute(moves.front().node, moves.front().action);
  }
}

TEST(DftcOrbit, CorruptStateIsIllegitimate) {
  Dftc dftc(Graph::ring(5));
  dftc.resetClean();
  // A lone pointer with no token justification is off-orbit.
  dftc.decodeNode(2, dftc.encodeNode(2) + 1);
  EXPECT_FALSE(dftc.isLegitimate());
}

TEST(DftcToken, ExactlyOneTokenHolderOnOrbit) {
  Dftc dftc(Graph::figure311());
  dftc.resetClean();
  for (int i = 0; i < 100; ++i) {
    int holders = 0;
    for (NodeId p = 0; p < dftc.graph().nodeCount(); ++p)
      holders += dftc.holdsToken(p) ? 1 : 0;
    EXPECT_EQ(holders, 1) << "move " << i;
    const auto moves = dftc.enabledMoves();
    dftc.execute(moves.front().node, moves.front().action);
  }
}

class DftcConvergence
    : public ::testing::TestWithParam<std::tuple<int, DaemonKind>> {};

TEST_P(DftcConvergence, StabilizesFromArbitraryStates) {
  const auto [seed, kind] = GetParam();
  Rng topoRng(static_cast<std::uint64_t>(seed) * 977 + 13);
  const std::vector<Graph> graphs = {
      Graph::ring(5),
      Graph::path(6),
      Graph::star(5),
      Graph::complete(4),
      Graph::grid(2, 3),
      Graph::randomConnected(8, 0.25, topoRng),
  };
  for (const Graph& g : graphs) {
    Dftc dftc(g);
    Rng rng(static_cast<std::uint64_t>(seed));
    dftc.randomize(rng);
    auto daemon = makeDaemon(kind);
    Simulator sim(dftc, *daemon, rng);
    const RunStats stats =
        sim.runUntil([&dftc] { return dftc.isLegitimate(); }, 200'000);
    EXPECT_TRUE(stats.converged)
        << "n=" << g.nodeCount() << " daemon=" << daemon->name()
        << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDaemons, DftcConvergence,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(DaemonKind::kCentral,
                                         DaemonKind::kDistributed,
                                         DaemonKind::kSynchronous,
                                         DaemonKind::kRoundRobin)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_" +
             daemonTag(std::get<1>(info.param));
    });

TEST(DftcCodec, EncodeDecodeRoundTrips) {
  Dftc dftc(Graph::figure311());
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    dftc.randomize(rng);
    const auto codes = dftc.encodeConfiguration();
    Dftc other{Graph::figure311()};
    other.decodeConfiguration(codes);
    EXPECT_EQ(other.encodeConfiguration(), codes);
    for (NodeId p = 0; p < 5; ++p)
      EXPECT_EQ(other.dumpNode(p), dftc.dumpNode(p));
  }
}

TEST(DftcCodec, LocalStateCountsAreTight) {
  const Graph g = Graph::figure311();
  Dftc dftc(g);
  // Every code below localStateCount decodes and re-encodes to itself.
  for (NodeId p = 0; p < g.nodeCount(); ++p) {
    for (std::uint64_t c = 0; c < dftc.localStateCount(p); ++c) {
      dftc.decodeNode(p, c);
      EXPECT_EQ(dftc.encodeNode(p), c);
    }
  }
}

TEST(DftcSpace, StateBitsAreLogarithmic) {
  const Graph g = Graph::ring(16);
  Dftc dftc(g);
  // Non-root ring node: log2(3) + 1 + log2(16) + log2(2) ≈ 7.6 bits.
  EXPECT_NEAR(dftc.stateBits(1), std::log2(3.0) + 1 + 4 + 1, 1e-9);
  // Root stores only S and col.
  EXPECT_NEAR(dftc.stateBits(0), std::log2(3.0) + 1, 1e-9);
}

TEST(Dftc, RejectsTrivialAndDisconnected) {
  EXPECT_DEATH({ Dftc d(Graph(1, {})); }, "");
  EXPECT_DEATH({ Dftc d(Graph(4, {{0, 1}, {2, 3}})); }, "");
}

}  // namespace
}  // namespace ssno
