// Tests for chordal-sense-of-direction routing (§1.3 application).
#include "apps/routing.hpp"

#include <gtest/gtest.h>

#include "core/daemon.hpp"
#include "core/graph.hpp"
#include "core/graph_algo.hpp"
#include "core/scheduler.hpp"
#include "orientation/dftno.hpp"
#include "sptree/dfs_tree.hpp"

namespace ssno {
namespace {

Orientation canonicalOrientation(const Graph& g) {
  std::vector<int> names(static_cast<std::size_t>(g.nodeCount()));
  const auto pre = portOrderDfsPreorder(g);
  for (NodeId p = 0; p < g.nodeCount(); ++p)
    names[static_cast<std::size_t>(p)] = pre[static_cast<std::size_t>(p)];
  return inducedChordalOrientation(g, names, g.nodeCount());
}

TEST(NeighborName, DerivedFromLabelOnly) {
  const Graph g = Graph::figure221();
  const Orientation o = canonicalOrientation(g);
  for (NodeId p = 0; p < g.nodeCount(); ++p)
    for (Port l = 0; l < g.degree(p); ++l)
      EXPECT_EQ(neighborNameViaLabel(o, p, l),
                o.nameOf(g.neighborAt(p, l)));
}

TEST(GreedyRouting, RingFollowsCyclicDirection) {
  // On a ring with canonical (cyclic) names, greedy chordal routing
  // always delivers: it walks the cyclic direction (hops = cyclic
  // distance), except for the immediate predecessor, reached directly.
  const Graph g = Graph::ring(9);
  const Orientation o = canonicalOrientation(g);
  for (NodeId s = 0; s < 9; ++s) {
    for (NodeId t = 0; t < 9; ++t) {
      if (s == t) continue;
      const RouteResult r = routeGreedyChordal(o, s, o.nameOf(t));
      ASSERT_TRUE(r.delivered) << s << "->" << t;
      const int cyc = chordalDistance(o.nameOf(t), o.nameOf(s), 9);
      EXPECT_EQ(r.hops, cyc == 8 ? 1 : cyc);
      EXPECT_EQ(r.path.back(), t);
    }
  }
}

TEST(GreedyRouting, CompleteGraphIsOneHop) {
  const Graph g = Graph::complete(7);
  const Orientation o = canonicalOrientation(g);
  for (NodeId s = 0; s < 7; ++s)
    for (NodeId t = 0; t < 7; ++t) {
      if (s == t) continue;
      const RouteResult r = routeGreedyChordal(o, s, o.nameOf(t));
      ASSERT_TRUE(r.delivered);
      EXPECT_EQ(r.hops, 1);
    }
}

TEST(GreedyRouting, PathEndpointsTraverseWholePath) {
  const Graph g = Graph::path(8);
  const Orientation o = canonicalOrientation(g);
  const RouteResult r = routeGreedyChordal(o, 0, o.nameOf(7));
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.hops, 7);
}

TEST(GreedyRouting, ReportsFailureOnDeadEnd) {
  // Craft an orientation where greedy gets stuck: on a star, route
  // between two leaves whose names put the hub "behind" the target.
  // Hub named 0; leaves 1..4.  From leaf named 1 to target named 2:
  // the only neighbor (hub, name 0) has cyclic distance (2-0)=2 equal
  // to... from s: (2-1)=1; hub: 2 -> not an improvement -> dead end.
  const Graph g = Graph::star(5);
  const Orientation o = inducedChordalOrientation(g, {0, 1, 2, 3, 4}, 5);
  const RouteResult r = routeGreedyChordal(o, 1, 2);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.hops, 0);
}

TEST(GreedyRouting, DetourRescuesStarDeadEnd) {
  const Graph g = Graph::star(5);
  const Orientation o = inducedChordalOrientation(g, {0, 1, 2, 3, 4}, 5);
  const RouteResult r = routeGreedyWithDetours(o, 1, 2, 1);
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.hops, 2);  // leaf -> hub -> leaf
}

TEST(GreedyRouting, StabilizedDftnoOrientationRoutesOnRing) {
  // End-to-end: self-stabilize DFTNO on a ring, then route on the
  // resulting labels.
  Dftno dftno(Graph::ring(8));
  Rng rng(1);
  dftno.randomize(rng);
  RoundRobinDaemon daemon;
  Simulator sim(dftno, daemon, rng);
  const RunStats stats =
      sim.runUntil([&dftno] { return dftno.isLegitimate(); }, 10'000'000);
  ASSERT_TRUE(stats.converged);
  const Orientation o = dftno.orientation();
  const RoutingStats rs = evaluateRouting(o, 0);
  EXPECT_EQ(rs.pairs, 8 * 7);
  EXPECT_EQ(rs.delivered, rs.pairs);
}

TEST(FloodBaseline, CountsForKnownTopologies) {
  // Flood: src sends deg(src); every other node forwards deg−1.
  EXPECT_EQ(floodMessages(Graph::ring(6), 0), 2 + 5 * 1);
  EXPECT_EQ(floodMessages(Graph::complete(5), 0), 4 + 4 * 3);
  EXPECT_EQ(floodMessages(Graph::star(5), 0), 4 + 4 * 0);
}

TEST(RoutingStats, StretchIsAtLeastOne) {
  Rng rng(2);
  const Graph g = Graph::randomConnected(12, 0.3, rng);
  const Orientation o = canonicalOrientation(g);
  const RoutingStats rs = evaluateRouting(o, 2);
  EXPECT_EQ(rs.pairs, 12 * 11);
  EXPECT_GT(rs.delivered, 0);
  EXPECT_GE(rs.meanStretch, 1.0);
  EXPECT_GE(rs.maxStretch, rs.meanStretch);
}

}  // namespace
}  // namespace ssno
