// Unit tests for the statistics helpers used by the bench harness.
#include "obs/stats.hpp"

#include <gtest/gtest.h>

namespace ssno {
namespace {

TEST(Summarize, Empty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0);
}

TEST(Summarize, SingleValue) {
  const Summary s = summarize({4.0});
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summarize, KnownDistribution) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(Summarize, QuantileInterpolation) {
  const Summary s = summarize({0, 10});
  EXPECT_DOUBLE_EQ(s.p50, 5.0);
  EXPECT_DOUBLE_EQ(s.p95, 9.5);
}

TEST(FitLinear, PerfectLine) {
  const LinearFit f = fitLinear({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 2x + 1
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.intercept, 1.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(FitLinear, ConstantY) {
  const LinearFit f = fitLinear({1, 2, 3}, {4, 4, 4});
  EXPECT_NEAR(f.slope, 0.0, 1e-9);
  EXPECT_NEAR(f.intercept, 4.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);  // degenerate: model explains everything
}

TEST(FitLinear, NoisyLineHighR2) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + ((i % 2) ? 0.5 : -0.5));
  }
  const LinearFit f = fitLinear(x, y);
  EXPECT_NEAR(f.slope, 3.0, 0.01);
  EXPECT_GT(f.r2, 0.999);
}

TEST(FitLinear, VerticalDataZeroSlope) {
  const LinearFit f = fitLinear({2, 2, 2}, {1, 5, 9});
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_DOUBLE_EQ(f.intercept, 5.0);
}

}  // namespace
}  // namespace ssno
