// Status-change-feed consumers: fault-impact bookkeeping and status
// trace recording must be bit-identical to the historical
// walk-the-move-list implementations they replace.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/daemon.hpp"
#include "core/fault.hpp"
#include "core/rng.hpp"
#include "core/scheduler.hpp"
#include "core/trace.hpp"
#include "orientation/dftno.hpp"
#include "sptree/bfs_tree.hpp"

namespace ssno {
namespace {

/// The old walk: enabled nodes via a full enabledMoves() scan.
std::vector<bool> enabledByWalk(const Protocol& proto) {
  std::vector<bool> enabled(static_cast<std::size_t>(proto.graph().nodeCount()),
                            false);
  for (const Move& m : proto.enabledMoves())
    enabled[static_cast<std::size_t>(m.node)] = true;
  return enabled;
}

std::vector<bool> toVec(const bits::WordBitset& b) {
  std::vector<bool> out(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) out[i] = b.test(i);
  return out;
}

TEST(FaultImpactTracker, BitIdenticalToMoveListWalkUnderChurn) {
  for (DaemonKind daemonKind :
       {DaemonKind::kSynchronous, DaemonKind::kRoundRobin}) {
    const Graph g = Graph::grid(4, 4);
    Dftno proto(g);
    Rng rng(91);
    proto.randomize(rng);
    const std::unique_ptr<Daemon> daemon = makeDaemon(daemonKind);
    Simulator sim(proto, *daemon, rng);
    FaultImpactTracker tracker(g.nodeCount());
    sim.setStatusObserver(
        [&](std::span<const NodeId> ch, bool inv, const EnabledView& v) {
          tracker.onStatusChanges(ch, inv, v);
        });
    FaultInjector inj(proto);
    // Old-walk shadow: enabled set + cumulative footprint per step.
    std::vector<bool> footprint(static_cast<std::size_t>(g.nodeCount()),
                                false);
    for (int step = 0; step < 200; ++step) {
      if (step % 17 == 5) inj.corruptK(2, rng);
      if (sim.stepOnce().empty()) break;
      const std::vector<bool> walk = enabledByWalk(proto);
      for (std::size_t i = 0; i < walk.size(); ++i)
        if (walk[i]) footprint[i] = true;
      ASSERT_EQ(toVec(tracker.enabledNow()), walk) << "step " << step;
      ASSERT_EQ(toVec(tracker.footprint()), footprint) << "step " << step;
    }
    EXPECT_EQ(tracker.footprintCount(),
              static_cast<std::size_t>(
                  std::count(footprint.begin(), footprint.end(), true)));
  }
}

TEST(FaultImpactTracker, ResetFootprintKeepsCurrentlyEnabled) {
  const Graph g = Graph::ring(8);
  BfsTree proto(g);
  Rng rng(5);
  proto.randomize(rng);
  const std::unique_ptr<Daemon> daemon = makeDaemon(DaemonKind::kSynchronous);
  Simulator sim(proto, *daemon, rng);
  FaultImpactTracker tracker(g.nodeCount());
  sim.setStatusObserver(
      [&](std::span<const NodeId> ch, bool inv, const EnabledView& v) {
        tracker.onStatusChanges(ch, inv, v);
      });
  (void)sim.stepOnce();
  tracker.resetFootprint();
  EXPECT_EQ(toVec(tracker.footprint()), toVec(tracker.enabledNow()));
}

TEST(TraceRecorder, StatusEventsBitIdenticalToMoveListDiff) {
  for (DaemonKind daemonKind :
       {DaemonKind::kSynchronous, DaemonKind::kDistributed}) {
    const Graph g = Graph::grid(3, 4);
    Dftno proto(g);
    Rng rng(17);
    proto.randomize(rng);
    const std::unique_ptr<Daemon> daemon = makeDaemon(daemonKind);
    Simulator sim(proto, *daemon, rng);
    TraceRecorder trace(proto);
    sim.setStatusObserver(
        [&](std::span<const NodeId> ch, bool inv, const EnabledView& v) {
          trace.recordStatusChanges(ch, inv, v);
        });
    // Old walk: a full enabled scan per step, diffed against the last.
    std::vector<StatusEvent> walkEvents;
    std::vector<bool> prev(static_cast<std::size_t>(g.nodeCount()), false);
    StepCount step = 0;
    for (int i = 0; i < 150; ++i) {
      if (sim.stepOnce().empty()) break;
      const std::vector<bool> now = enabledByWalk(proto);
      for (std::size_t p = 0; p < now.size(); ++p)
        if (now[p] != prev[p])
          walkEvents.push_back({step, static_cast<NodeId>(p), now[p]});
      prev = now;
      ++step;
    }
    ASSERT_EQ(trace.statusEvents().size(), walkEvents.size());
    for (std::size_t i = 0; i < walkEvents.size(); ++i) {
      EXPECT_EQ(trace.statusEvents()[i].step, walkEvents[i].step) << i;
      EXPECT_EQ(trace.statusEvents()[i].node, walkEvents[i].node) << i;
      EXPECT_EQ(trace.statusEvents()[i].enabled, walkEvents[i].enabled) << i;
    }
    EXPECT_FALSE(trace.renderStatus().empty());
  }
}

TEST(TraceRecorder, ClearResetsStatusStream) {
  const Graph g = Graph::ring(6);
  BfsTree proto(g);
  Rng rng(3);
  proto.randomize(rng);
  const std::unique_ptr<Daemon> daemon = makeDaemon(DaemonKind::kSynchronous);
  Simulator sim(proto, *daemon, rng);
  TraceRecorder trace(proto);
  sim.setStatusObserver(
      [&](std::span<const NodeId> ch, bool inv, const EnabledView& v) {
        trace.recordStatusChanges(ch, inv, v);
      });
  (void)sim.stepOnce();
  EXPECT_FALSE(trace.statusEvents().empty());
  trace.clear();
  EXPECT_TRUE(trace.statusEvents().empty());
  EXPECT_TRUE(trace.renderStatus().empty());
}

}  // namespace
}  // namespace ssno
