// Unit tests for the deterministic random source.
#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ssno {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool anyDiff = false;
  for (int i = 0; i < 16; ++i) anyDiff = anyDiff || (a.next() != b.next());
  EXPECT_TRUE(anyDiff);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.below(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(5);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int v = rng.between(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(77);
  Rng s1 = parent.split(1);
  Rng s2 = parent.split(2);
  bool anyDiff = false;
  for (int i = 0; i < 16; ++i) anyDiff = anyDiff || (s1.next() != s2.next());
  EXPECT_TRUE(anyDiff);
}

}  // namespace
}  // namespace ssno
