// Tests for the self-stabilizing BFS spanning tree substrate: silent
// configuration = BFS tree, convergence under every daemon (including
// the unfair adversarial one — the property STNO relies on), exhaustive
// model checks, children/role derivation.
#include "sptree/bfs_tree.hpp"

#include <gtest/gtest.h>

#include "core/checker.hpp"
#include "core/graph.hpp"
#include "core/graph_algo.hpp"
#include "core/scheduler.hpp"

namespace ssno {
namespace {

TEST(BfsTree, SilentConfigurationIsBfsTree) {
  for (auto g : {Graph::ring(7), Graph::grid(3, 3), Graph::complete(5),
                 Graph::lollipop(4, 3), Graph::figure311()}) {
    BfsTree tree(g);
    Rng rng(1);
    tree.randomize(rng);
    RoundRobinDaemon daemon;
    Simulator sim(tree, daemon, rng);
    const RunStats stats = sim.runToQuiescence(1'000'000);
    ASSERT_TRUE(stats.terminal);
    EXPECT_TRUE(tree.isLegitimate());
    const auto want = bfsDistances(g, g.root());
    for (NodeId p = 0; p < g.nodeCount(); ++p) {
      EXPECT_EQ(tree.distOf(p), want[static_cast<std::size_t>(p)])
          << "node " << p;
      if (p != g.root()) {
        const NodeId parent = tree.parentOf(p);
        EXPECT_EQ(tree.distOf(parent), tree.distOf(p) - 1);
      }
    }
    std::vector<NodeId> parents(static_cast<std::size_t>(g.nodeCount()));
    for (NodeId p = 0; p < g.nodeCount(); ++p)
      parents[static_cast<std::size_t>(p)] = tree.parentOf(p);
    EXPECT_TRUE(isSpanningTree(g, parents));
  }
}

TEST(BfsTree, ConvergesUnderUnfairDaemon) {
  // Chapter 5: STNO only needs an unfair daemon; that hinges on the
  // spanning tree substrate converging without fairness.
  const Graph g = Graph::grid(3, 3);
  BfsTree tree(g);
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    tree.randomize(rng);
    AdversarialDaemon daemon;
    Simulator sim(tree, daemon, rng);
    const RunStats stats = sim.runToQuiescence(1'000'000);
    EXPECT_TRUE(stats.terminal);
    EXPECT_TRUE(tree.isLegitimate());
  }
}

TEST(BfsTreeExhaustive, StrictConvergenceOnSmallGraphs) {
  // Fairness::kNone — the strongest criterion: every execution under any
  // daemon converges (matching the unfair-daemon claim).
  for (auto g : {Graph::path(3), Graph::ring(3), Graph::path(4),
                 Graph::star(4), Graph::ring(4),
                 Graph(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}})}) {
    BfsTree tree(g);
    ModelChecker mc(tree, [&tree] { return tree.isLegitimate(); });
    const CheckResult res = mc.verifyFullSpace(1u << 22, Fairness::kNone);
    EXPECT_TRUE(res.ok) << "n=" << g.nodeCount() << ": " << res.failure;
  }
}

TEST(BfsTree, HeightMatchesEccentricity) {
  for (auto g : {Graph::path(6), Graph::star(6), Graph::ring(8)}) {
    BfsTree tree(g);
    Rng rng(3);
    tree.randomize(rng);
    RoundRobinDaemon daemon;
    Simulator sim(tree, daemon, rng);
    (void)sim.runToQuiescence(1'000'000);
    EXPECT_EQ(tree.currentHeight(), eccentricity(g, g.root()));
  }
}

TEST(BfsTree, ChildrenAndRoles) {
  const Graph g = Graph::star(5);
  BfsTree tree(g);
  Rng rng(4);
  tree.randomize(rng);
  RoundRobinDaemon daemon;
  Simulator sim(tree, daemon, rng);
  (void)sim.runToQuiescence(100'000);
  EXPECT_EQ(tree.roleOf(0), TreeRole::kRoot);
  EXPECT_EQ(static_cast<int>(tree.childrenOf(0).size()), 4);
  for (NodeId p = 1; p < 5; ++p) {
    EXPECT_EQ(tree.roleOf(p), TreeRole::kLeaf);
    EXPECT_EQ(tree.parentOf(p), 0);
  }
}

TEST(BfsTree, ChildrenInPortOrder) {
  const Graph g = Graph::star(5);
  BfsTree tree(g);
  Rng rng(5);
  tree.randomize(rng);
  RoundRobinDaemon daemon;
  Simulator sim(tree, daemon, rng);
  (void)sim.runToQuiescence(100'000);
  EXPECT_EQ(tree.childrenOf(0), (std::vector<NodeId>{1, 2, 3, 4}));
}

TEST(BfsTree, ConvergenceTimeScalesWithDiameterRounds) {
  // Silent BFS construction takes O(diam) asynchronous rounds; check the
  // round count stays well under the node count on a long path.
  const Graph g = Graph::path(30);
  BfsTree tree(g);
  Rng rng(6);
  tree.randomize(rng);
  SynchronousDaemon daemon;
  Simulator sim(tree, daemon, rng);
  const RunStats stats = sim.runToQuiescence(10'000'000);
  ASSERT_TRUE(stats.terminal);
  // Distances can rise at most to n−1, one level per synchronous round.
  EXPECT_LE(stats.rounds, 2 * g.nodeCount());
}

TEST(BfsTree, CodecRoundTrips) {
  const Graph g = Graph::figure311();
  BfsTree tree(g);
  for (NodeId p = 0; p < g.nodeCount(); ++p) {
    for (std::uint64_t c = 0; c < tree.localStateCount(p); ++c) {
      tree.decodeNode(p, c);
      EXPECT_EQ(tree.encodeNode(p), c);
    }
  }
}

TEST(BfsTree, FixedTreeViewMatches) {
  const Graph g = Graph::kAryTree(7, 2);
  const std::vector<NodeId> parents{kNoNode, 0, 0, 1, 1, 2, 2};
  const FixedTree fixed(g, parents);
  EXPECT_EQ(fixed.parentOf(0), kNoNode);
  EXPECT_EQ(fixed.parentOf(5), 2);
  EXPECT_EQ(fixed.roleOf(0), TreeRole::kRoot);
  EXPECT_EQ(fixed.roleOf(1), TreeRole::kInternal);
  EXPECT_EQ(fixed.roleOf(6), TreeRole::kLeaf);
  EXPECT_EQ(fixed.childrenOf(1), (std::vector<NodeId>{3, 4}));
}

TEST(BfsTree, FixedTreeRejectsNonTree) {
  const Graph g = Graph::ring(4);
  EXPECT_DEATH({ FixedTree bad(g, {kNoNode, 2, 1, 2}); }, "");
}

}  // namespace
}  // namespace ssno
