// Canonical scenario serialization and content keys (exp/canon.hpp):
// the result cache is only sound if (a) the canonical text round-trips
// exactly, (b) defaults and explicitly-set defaults hash identically,
// and (c) the display name never reaches the key.  The golden-text test
// pins the field order and formats — if it fails, the on-disk cache
// format changed and kCacheSalt must be bumped alongside.
#include "exp/canon.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "exp/scenario.hpp"

namespace ssno::exp {
namespace {

const char* const kTriples[] = {
    "dftno/round-robin/ring:8",
    "stno/distributed/torus:3x4",
    "dftno-churn/round-robin/grid:3x4",
    "stno-recovery/central/star:6",
    "model-check:dftc/central/path:3",
    "model-check:dftc-fault/central/ring:5",
    "space/central/chordring:16:2,5",
    "scheduler/central/ring:32",
    "resilience/central/ring:16",
};

TEST(Canon, RoundTripsEveryProtocolShape) {
  for (const char* triple : kTriples) {
    Scenario s = parseScenario(triple);
    s.trials = 7;
    s.seed = 42;
    s.budget = 12345;
    s.faultRate = 0.25;
    s.faultK = 3;
    s.mcThreads = 2;
    s.faultPlan = "burst:k=2@round=1;scramble@step=40";
    s.adversary = "lookahead";
    s.lookahead = 3;
    const std::string text = canonicalScenario(s);
    const Scenario back = parseCanonicalScenario(text);
    EXPECT_EQ(canonicalScenario(back), text) << triple;
    EXPECT_EQ(scenarioDigest(back, "salt"), scenarioDigest(s, "salt"))
        << triple;
  }
}

TEST(Canon, GoldenTextPinsFieldOrderAndDefaults) {
  Scenario s = parseScenario("dftc/central/ring:64");
  s.trials = 3;
  EXPECT_EQ(canonicalScenario(s),
            "canon=2 protocol=dftc mc-target=dftc daemon=central "
            "topology=ring:64 trials=3 seed=0 budget=200000000 rate=0 "
            "k=1 mc-threads=8 fault-plan=- adversary=greedy lookahead=2");
}

TEST(Canon, DefaultAndExplicitDefaultShareOneKey) {
  Scenario s = parseScenario("dftno/round-robin/ring:8");
  Scenario t = s;
  t.seed = 0;       // already the default
  t.faultRate = 0;  // already the default
  t.faultK = 1;     // already the default
  t.faultPlan = "";         // already the default
  t.adversary = "greedy";   // already the default
  t.lookahead = 2;          // already the default
  EXPECT_EQ(canonicalScenario(s), canonicalScenario(t));
}

TEST(Canon, DisplayNameIsNotSemantics) {
  Scenario s = parseScenario("dftno/round-robin/ring:8");
  Scenario t = s;
  t.name = "a completely different label";
  EXPECT_EQ(canonicalScenario(s), canonicalScenario(t));
  EXPECT_EQ(scenarioDigest(s, "x"), scenarioDigest(t, "x"));
  // ...but the salt IS part of the key.
  EXPECT_NE(scenarioDigest(s, "x").hex(), scenarioDigest(s, "y").hex());
}

TEST(Canon, ParseRejectsMalformedText) {
  const std::string good =
      canonicalScenario(parseScenario("dftc/central/ring:8"));
  EXPECT_NO_THROW(parseCanonicalScenario(good));
  EXPECT_THROW(parseCanonicalScenario(""), std::invalid_argument);
  // A v1 text (pre fault-plan fields) must be rejected, not guessed at.
  EXPECT_THROW(parseCanonicalScenario("canon=1" + good.substr(7)),
               std::invalid_argument);
  EXPECT_THROW(parseCanonicalScenario(good + " extra=1"),
               std::invalid_argument);
  EXPECT_THROW(parseCanonicalScenario(good + " trials=9"),
               std::invalid_argument);  // duplicate key
  // Missing a required key.
  const auto at = good.find(" trials=");
  const auto end = good.find(' ', at + 1);
  EXPECT_THROW(parseCanonicalScenario(good.substr(0, at) + good.substr(end)),
               std::invalid_argument);
}

TEST(Canon, Fnv1a128MatchesReferenceOffsetBasis) {
  // FNV-1a of the empty string is the offset basis by definition.
  EXPECT_EQ(fnv1a128("").hex(), "6c62272e07bb014262b821756295c58d");
  EXPECT_EQ(fnv1a128("a").hex().size(), 32u);
  EXPECT_NE(fnv1a128("a").hex(), fnv1a128("b").hex());
}

TEST(Canon, ResultPayloadRoundTrips) {
  ScenarioResult r;
  r.nodeCount = 64;
  r.edgeCount = 64;
  r.trials = 5;
  r.failedTrials = 1;
  r.cores = 8;
  Summary moves;
  moves.count = 4;
  moves.min = 841;
  moves.max = 959;
  moves.mean = 898.3333333333334;  // needs shortest-round-trip printing
  moves.stddev = 59.10160742314882;
  moves.p50 = 894;
  moves.p95 = 952.5;
  r.metrics["substrate_moves"] = moves;
  r.metrics["substrate_rounds"] = Summary{};

  const std::string payload = resultPayload(r);
  const ScenarioResult back = parseResultPayload(payload);
  EXPECT_EQ(resultPayload(back), payload);
  EXPECT_EQ(back.nodeCount, 64);
  EXPECT_EQ(back.failedTrials, 1);
  EXPECT_EQ(back.metric("substrate_moves").mean, moves.mean);
  EXPECT_EQ(back.metric("substrate_moves").stddev, moves.stddev);

  EXPECT_THROW(parseResultPayload(""), std::invalid_argument);
  EXPECT_THROW(parseResultPayload(payload + "trailing\n"),
               std::invalid_argument);
  EXPECT_THROW(parseResultPayload(payload.substr(0, payload.size() / 2)),
               std::invalid_argument);
}

TEST(Canon, FilterOnlyKeepsTheNamedScenario) {
  std::vector<Scenario> sweep = makePreset("dftno-scaling");
  ASSERT_GT(sweep.size(), 1u);
  const std::string pick = sweep[1].name;
  const std::vector<Scenario> kept = filterOnly(sweep, pick);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].name, pick);
}

TEST(Canon, FilterOnlyErrorListsValidNames) {
  std::vector<Scenario> sweep = makePreset("dftno-scaling");
  const std::string valid = sweep.front().name;
  try {
    (void)filterOnly(std::move(sweep), "no-such-scenario");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-scenario"), std::string::npos) << what;
    EXPECT_NE(what.find(valid), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace ssno::exp
