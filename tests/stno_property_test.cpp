// Property sweeps for STNO (Theorem 4.2.3): convergence from arbitrary
// configurations on many topologies under every daemon — including the
// unfair adversarial one, which the paper singles out as sufficient for
// STNO — plus the O(h)-after-L_ST shape of the stabilization cost.
#include <gtest/gtest.h>

#include <algorithm>

#include <string>
#include <tuple>

#include "core/daemon.hpp"
#include "core/graph.hpp"
#include "core/graph_algo.hpp"
#include "core/scheduler.hpp"
#include "orientation/stno.hpp"
#include "sptree/dfs_tree.hpp"

namespace ssno {
namespace {

enum class Topology {
  kRing,
  kPath,
  kStar,
  kComplete,
  kGrid,
  kBinaryTree,
  kRandomSparse,
  kRandomDense,
  kCaterpillar,
  kLollipop,
};


std::string daemonTag(DaemonKind kind) {
  std::string s = daemonKindName(kind);
  s.erase(std::remove(s.begin(), s.end(), '-'), s.end());
  return s;
}

std::string topologyName(Topology t) {
  switch (t) {
    case Topology::kRing: return "Ring";
    case Topology::kPath: return "Path";
    case Topology::kStar: return "Star";
    case Topology::kComplete: return "Complete";
    case Topology::kGrid: return "Grid";
    case Topology::kBinaryTree: return "BinaryTree";
    case Topology::kRandomSparse: return "RandomSparse";
    case Topology::kRandomDense: return "RandomDense";
    case Topology::kCaterpillar: return "Caterpillar";
    case Topology::kLollipop: return "Lollipop";
  }
  return "?";
}

Graph makeTopology(Topology t, int scale, Rng& rng) {
  switch (t) {
    case Topology::kRing: return Graph::ring(3 + scale * 4);
    case Topology::kPath: return Graph::path(2 + scale * 4);
    case Topology::kStar: return Graph::star(3 + scale * 4);
    case Topology::kComplete: return Graph::complete(3 + scale);
    case Topology::kGrid: return Graph::grid(2 + scale, 3);
    case Topology::kBinaryTree: return Graph::kAryTree(3 + scale * 4, 2);
    case Topology::kRandomSparse:
      return Graph::randomConnected(5 + scale * 4, 0.1, rng);
    case Topology::kRandomDense:
      return Graph::randomConnected(5 + scale * 3, 0.5, rng);
    case Topology::kCaterpillar: return Graph::caterpillar(2 + scale, 2);
    case Topology::kLollipop: return Graph::lollipop(3 + scale, 2 + scale);
  }
  return Graph::ring(3);
}

class StnoProperty
    : public ::testing::TestWithParam<std::tuple<Topology, int, DaemonKind>> {
};

TEST_P(StnoProperty, ConvergesSilentlyAndSatisfiesSpec) {
  const auto [topo, seed, kind] = GetParam();
  Rng topoRng(static_cast<std::uint64_t>(seed) * 6271 + 5);
  const Graph g = makeTopology(topo, 1 + seed % 3, topoRng);
  Stno stno(g);
  Rng rng(static_cast<std::uint64_t>(seed) * 997 + 29);
  stno.randomize(rng);
  auto daemon = makeDaemon(kind);
  Simulator sim(stno, *daemon, rng);
  const RunStats stats = sim.runToQuiescence(40'000'000);
  ASSERT_TRUE(stats.terminal)
      << topologyName(topo) << " n=" << g.nodeCount() << " under "
      << daemon->name();
  EXPECT_TRUE(stno.isLegitimate());
  const Orientation o = stno.orientation();
  EXPECT_TRUE(satisfiesSpec(o));
  EXPECT_TRUE(isLocallyOriented(o));
  EXPECT_TRUE(hasEdgeSymmetry(o));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StnoProperty,
    ::testing::Combine(
        ::testing::Values(Topology::kRing, Topology::kPath, Topology::kStar,
                          Topology::kComplete, Topology::kGrid,
                          Topology::kBinaryTree, Topology::kRandomSparse,
                          Topology::kRandomDense, Topology::kCaterpillar,
                          Topology::kLollipop),
        ::testing::Range(0, 4),
        // Includes the unfair adversarial daemon — Chapter 5's claim.
        ::testing::Values(DaemonKind::kCentral, DaemonKind::kDistributed,
                          DaemonKind::kSynchronous, DaemonKind::kRoundRobin,
                          DaemonKind::kAdversarial)),
    [](const auto& info) {
      return topologyName(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param)) + "_" +
             daemonTag(std::get<2>(info.param));
    });

// O(h) shape (Lemma 4.2.1 / §4.2.3): after the tree is stable, rounds to
// silence grow with the tree height, not the node count.  Compare a star
// (h = 1) against a path (h = n−1) of the same size.
TEST(StnoScalingShape, RoundsAfterTreeLegitScaleWithHeight) {
  auto roundsFor = [](const Graph& g) {
    std::vector<NodeId> parents = portOrderDfsTree(g);
    Stno stno(g, std::move(parents));
    Rng rng(11);
    stno.randomize(rng);
    SynchronousDaemon daemon;
    Simulator sim(stno, daemon, rng);
    const RunStats stats = sim.runToQuiescence(40'000'000);
    EXPECT_TRUE(stats.terminal);
    return stats.rounds;
  };
  const StepCount starRounds = roundsFor(Graph::star(40));
  const StepCount pathRounds = roundsFor(Graph::path(40));
  // The star (height 1) finishes in a handful of rounds regardless of n;
  // the path needs Θ(h) rounds.
  EXPECT_LE(starRounds, 6);
  EXPECT_GE(pathRounds, 20);
}

}  // namespace
}  // namespace ssno
