// Behavioral tests for STNO (Algorithm 4.1.2): bottom-up weights,
// top-down interval naming (Figure 4.1.1), edge labeling of tree AND
// non-tree edges, the erratum regression for corrupt Start arrays, and
// exhaustive model checks of the orientation layer.
#include "orientation/stno.hpp"

#include <gtest/gtest.h>

#include "core/checker.hpp"
#include "core/daemon.hpp"
#include "core/graph.hpp"
#include "core/scheduler.hpp"
#include "sptree/dfs_tree.hpp"

namespace ssno {
namespace {

void stabilize(Stno& stno, std::uint64_t seed = 1) {
  // Chapter 5: STNO works under an unfair daemon — use the adversarial
  // one on purpose.
  AdversarialDaemon daemon;
  Rng rng(seed);
  Simulator sim(stno, daemon, rng);
  const RunStats stats = sim.runToQuiescence(10'000'000);
  ASSERT_TRUE(stats.terminal);
  ASSERT_TRUE(stno.isLegitimate());
}

TEST(Stno, Figure411WeightsAndNames) {
  // Figure 4.1.1's 5-node tree: root with children {1, 2}; node 1 with
  // children {3, 4}.  Weights: leaves 1, node1 3, root 5.  Names: root 0;
  // node1 gets [1..3] -> 1; node3 -> 2; node4 -> 3; node2 -> 4.
  const Graph g(5, {{0, 1}, {0, 2}, {1, 3}, {1, 4}});
  Stno stno(g, {kNoNode, 0, 0, 1, 1});
  Rng rng(2);
  stno.randomize(rng);
  stabilize(stno);
  EXPECT_EQ(stno.weight(3), 1);
  EXPECT_EQ(stno.weight(4), 1);
  EXPECT_EQ(stno.weight(2), 1);
  EXPECT_EQ(stno.weight(1), 3);
  EXPECT_EQ(stno.weight(0), 5);
  EXPECT_EQ(stno.name(0), 0);
  EXPECT_EQ(stno.name(1), 1);
  EXPECT_EQ(stno.name(3), 2);
  EXPECT_EQ(stno.name(4), 3);
  EXPECT_EQ(stno.name(2), 4);
}

TEST(Stno, NamesArePreorderIntervalsOnFixedTree) {
  // With port-order children, interval distribution assigns each node its
  // preorder index in the tree.
  const Graph g = Graph::kAryTree(7, 2);
  Stno stno(g, portOrderDfsTree(g));
  Rng rng(3);
  stno.randomize(rng);
  stabilize(stno);
  const auto pre = portOrderDfsPreorder(g);
  for (NodeId p = 0; p < g.nodeCount(); ++p)
    EXPECT_EQ(stno.name(p), pre[static_cast<std::size_t>(p)]);
}

TEST(Stno, LabelsTreeAndNonTreeEdges) {
  // "it orients all edges—both tree and non-tree edges—of the network."
  const Graph g = Graph::figure221();  // ring of 5 + chord
  Stno stno(g);                        // BFS-tree substrate
  Rng rng(4);
  stno.randomize(rng);
  stabilize(stno);
  const Orientation o = stno.orientation();
  EXPECT_TRUE(satisfiesSpec(o));  // SP2 quantifies over ALL incident edges
  EXPECT_TRUE(isLocallyOriented(o));
  EXPECT_TRUE(hasEdgeSymmetry(o));
}

TEST(Stno, LegitimacyImpliesSpecAndSilence) {
  Rng topo(5);
  for (auto g : {Graph::ring(7), Graph::grid(3, 3),
                 Graph::randomConnected(12, 0.3, topo)}) {
    Stno stno(g);
    Rng rng(6);
    stno.randomize(rng);
    stabilize(stno);
    EXPECT_TRUE(satisfiesSpec(stno.orientation()));
    EXPECT_TRUE(stno.enabledMoves().empty());  // silent protocol
  }
}

TEST(Stno, ErratumCorruptStartArrayIsNotStable) {
  // DESIGN.md erratum 1: under the paper's printed guards, a corrupt
  // Start array at a correctly-named node is a stable SP1 violation.
  // Our strengthened InvalidNodelabel flags it; this regression builds
  // exactly that configuration and checks the protocol repairs it.
  const Graph g = Graph::path(3);
  Stno stno(g, {kNoNode, 0, 1});
  Rng rng(7);
  stno.randomize(rng);
  stabilize(stno);
  ASSERT_EQ(stno.name(0), 0);
  ASSERT_EQ(stno.name(1), 1);
  ASSERT_EQ(stno.name(2), 2);
  // Corrupt the root's Start entry for child 1 to 2, and align the
  // child names so every printed-guard predicate is satisfied:
  // eta_1 := 2 = Start_0[1], Start_1[2] := 0... -> names {0,2,0} would
  // collide; use the stable-but-out-of-range variant {0,2,3 mod 3=0}?
  // Simplest faithful reproduction: Start_0[1]=2, eta_1=2, Start_1[2]=0,
  // eta_2=0 — pairwise parent-consistent, duplicate name with the root.
  auto raw1 = stno.rawNode(0);
  // raw layout: [weight, eta, start..., pi...]; port of child 1 at root=0.
  raw1[2] = 2;
  stno.setRawNode(0, raw1);
  auto raw2 = stno.rawNode(1);
  raw2[1] = 2;  // eta_1
  raw2[3] = 0;  // Start_1[child 2]  (ports of node1: 0->node0, 1->node2)
  stno.setRawNode(1, raw2);
  auto raw3 = stno.rawNode(2);
  raw3[1] = 0;  // eta_2 — duplicates the root's name
  stno.setRawNode(2, raw3);
  ASSERT_FALSE(satisfiesSpec(stno.orientation()));
  // Under the printed guards this would be silent; with the erratum fix
  // the root's NodeLabel action is enabled and the system recovers.
  EXPECT_FALSE(stno.enabledMoves().empty());
  stabilize(stno);
  EXPECT_TRUE(satisfiesSpec(stno.orientation()));
}

TEST(StnoExhaustive, FixedTreeOrientationLayerOnPath3) {
  // Full product space of the orientation layer over a legitimate fixed
  // tree, under the strictest (unfair) convergence criterion — matching
  // Chapter 5's claim that STNO needs no fairness.
  Stno stno(Graph::path(3), {kNoNode, 0, 1});
  ModelChecker mc(stno, [&stno] { return stno.isLegitimate(); });
  const CheckResult res = mc.verifyFullSpace(6'000'000, Fairness::kNone);
  EXPECT_TRUE(res.ok) << res.failure;
}

TEST(StnoExhaustive, ComposedWithBfsTreeOnPath2) {
  // Substrate and overlay together, full product space.
  Stno stno(Graph::path(2));
  ModelChecker mc(stno, [&stno] { return stno.isLegitimate(); });
  const CheckResult res = mc.verifyFullSpace(1u << 12, Fairness::kNone);
  EXPECT_TRUE(res.ok) << res.failure;
}

TEST(StnoReachable, ComposedWithBfsTreeOnPath3FromSampledSeeds) {
  // The full composed product (38M configurations) is out of unit-test
  // reach; check the downward cones of a dense random sample instead.
  // The COMPOSED system needs weak fairness: an unfair daemon can starve
  // the tree-fix action forever while the orientation layer chases a
  // broken (cyclic) parent structure with no fixpoint — see the pinned
  // regression below.
  Stno stno(Graph::path(3));
  Rng rng(0xBEEF);
  std::vector<std::vector<std::uint64_t>> seeds;
  for (int i = 0; i < 4000; ++i) {
    stno.randomize(rng);
    seeds.push_back(stno.encodeConfiguration());
  }
  ModelChecker mc(stno, [&stno] { return stno.isLegitimate(); });
  const CheckResult res =
      mc.verifyReachable(seeds, 4'000'000, Fairness::kWeaklyFair);
  EXPECT_TRUE(res.ok) << res.failure;
}

// Finding (DESIGN.md, deviation note 5): Chapter 5 claims STNO works
// with an unfair daemon.  That holds for the orientation layer over a
// STABLE spanning tree (the Fairness::kNone checks above), but NOT for
// the composition with the tree protocol: from a configuration whose
// parent pointers form a 2-cycle, the overlay's Weight/NodeLabel actions
// stay enabled forever (cyclic constraints have no fixpoint), so an
// unfair daemon can starve TreeFix indefinitely.  The checker exhibits
// the cycle; weak fairness between layers restores convergence.
TEST(StnoReachable, ComposedSystemIsNotUnfairDaemonConvergent) {
  Stno stno(Graph::path(3));
  // Plant the parent 2-cycle between nodes 1 and 2 with mismatched
  // names/weights, as found by the checker.
  // Raw layout per node: [bfs: dist, par(port)] + [W, eta, start..., pi...].
  stno.setRawNode(1, {2, 1, 3, 1, 1, 2, 1, 1});  // par port 1 -> node 2
  stno.setRawNode(2, {2, 0, 2, 0, 1, 1});        // par port 0 -> node 1
  stno.setRawNode(0, {1, 0, 2, 1});
  ModelChecker mc(stno, [&stno] { return stno.isLegitimate(); });
  const CheckResult res = mc.verifyReachable(
      {stno.encodeConfiguration()}, 4'000'000, Fairness::kNone);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("cycle"), std::string::npos) << res.failure;
}

TEST(StnoReachable, FixedTreeOnTriangleWithNonTreeEdge) {
  // Triangle: tree edges 0-1, 0-2 plus the non-tree edge 1-2 — the
  // smallest instance where SP2 covers a non-tree edge.
  Stno stno(Graph::ring(3), {kNoNode, 0, 0});
  Rng rng(0xF00D);
  std::vector<std::vector<std::uint64_t>> seeds;
  for (int i = 0; i < 4000; ++i) {
    stno.randomize(rng);
    seeds.push_back(stno.encodeConfiguration());
  }
  ModelChecker mc(stno, [&stno] { return stno.isLegitimate(); });
  const CheckResult res =
      mc.verifyReachable(seeds, 4'000'000, Fairness::kNone);
  EXPECT_TRUE(res.ok) << res.failure;
}

TEST(Stno, WeightsCapAtN) {
  // Corrupt weights above n must clamp rather than overflow the domain.
  const Graph g = Graph::path(3);
  Stno stno(g, {kNoNode, 0, 1});
  auto raw = stno.rawNode(1);
  raw[0] = 3;  // weight = n while the leaf below claims weight 3 too
  stno.setRawNode(1, raw);
  Rng rng(8);
  AdversarialDaemon daemon;
  Simulator sim(stno, daemon, rng);
  (void)sim.runToQuiescence(100'000);
  EXPECT_EQ(stno.weight(0), 3);
  EXPECT_EQ(stno.weight(1), 2);
  EXPECT_EQ(stno.weight(2), 1);
}

TEST(Stno, StartEntriesMatchDistributeSemantics) {
  // Paper example check: root 0 with children weights (3, 1) hands out
  // Start values 1 and 4.
  const Graph g(5, {{0, 1}, {0, 2}, {1, 3}, {1, 4}});
  Stno stno(g, {kNoNode, 0, 0, 1, 1});
  Rng rng(9);
  stno.randomize(rng);
  stabilize(stno);
  EXPECT_EQ(stno.startAt(0, 0), 1);  // child 1 (weight 3)
  EXPECT_EQ(stno.startAt(0, 1), 4);  // child 2 (weight 1)
}

TEST(Stno, SubstrateBitsAccountedSeparately) {
  const Graph g = Graph::star(8);
  Stno withTree(g);
  Stno fixed(g, portOrderDfsTree(g));
  EXPECT_GT(withTree.substrateBits(1), 0.0);
  EXPECT_EQ(fixed.substrateBits(1), 0.0);
  EXPECT_NEAR(withTree.orientationBits(0),
              (2.0 + 2.0 * 7) * std::log2(8.0), 1e-9);
}

}  // namespace
}  // namespace ssno
