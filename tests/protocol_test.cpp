// Tests for the Protocol base-class helpers shared by all protocols.
#include "core/protocol.hpp"

#include <gtest/gtest.h>

#include "core/graph.hpp"
#include "toy_protocols.hpp"

namespace ssno {
namespace {

TEST(Protocol, EnabledMovesNodeMajorOrder) {
  ZeroProtocol proto(Graph::path(3), 2);
  proto.setValue(0, 1);
  proto.setValue(1, 0);
  proto.setValue(2, 1);
  const auto moves = proto.enabledMoves();
  ASSERT_EQ(moves.size(), 2u);
  EXPECT_EQ(moves[0], (Move{0, 0}));
  EXPECT_EQ(moves[1], (Move{2, 0}));
}

TEST(Protocol, EncodeDecodeConfiguration) {
  ZeroProtocol proto(Graph::path(4), 5);
  Rng rng(1);
  proto.randomize(rng);
  const auto codes = proto.encodeConfiguration();
  ZeroProtocol other(Graph::path(4), 5);
  other.decodeConfiguration(codes);
  for (NodeId p = 0; p < 4; ++p)
    EXPECT_EQ(other.value(p), proto.value(p));
}

TEST(Protocol, RawConfigurationRoundTrips) {
  ZeroProtocol proto(Graph::ring(5), 7);
  Rng rng(2);
  proto.randomize(rng);
  const std::vector<int> raw = proto.rawConfiguration();
  EXPECT_EQ(raw.size(), 5u);
  ZeroProtocol other(Graph::ring(5), 7);
  other.setRawConfiguration(raw);
  EXPECT_EQ(other.rawConfiguration(), raw);
}

TEST(Protocol, ConfigurationHashDistinguishesStates) {
  ZeroProtocol a(Graph::path(3), 4), b(Graph::path(3), 4);
  a.setValue(0, 1);
  b.setValue(0, 2);
  EXPECT_NE(a.configurationHash(), b.configurationHash());
  b.setValue(0, 1);
  EXPECT_EQ(a.configurationHash(), b.configurationHash());
}

TEST(Protocol, GraphAccessor) {
  ZeroProtocol proto(Graph::star(4), 2);
  EXPECT_EQ(proto.graph().nodeCount(), 4);
  EXPECT_EQ(proto.graph().root(), 0);
}

}  // namespace
}  // namespace ssno
