// Deterministic I/O fault injection (io/fault.hpp + io/file.hpp): the
// schedule grammar must parse and fire reproducibly, the File wrappers
// must apply each fault's exact semantics, and — the point of the whole
// layer — every durable-state writer must recover from an injected
// crash at EVERY fault site: cache anomalies are counted misses, spill
// corruption is a named error, nothing ever throws from a read path.
//
// Crash sweeps fork a child per site (CrashPointRunner); this test
// binary is single-threaded, so fork is safe.  Only single-threaded
// workloads (cache store, spill) run in forked children; scheduler
// crash coverage lives in tools/chaos_smoke.py, which crashes whole
// exp_serve processes instead.
#include "io/fault.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "io/file.hpp"
#include "mc/spill.hpp"
#include "obs/metrics.hpp"
#include "serve/cache.hpp"

namespace ssno::io {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& leaf) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("ssno-io-" + leaf);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Installs nothing on construction, clears any schedule on scope exit
/// so one test's faults never leak into the next.
struct ScheduleGuard {
  ~ScheduleGuard() { clearFaultSchedule(); }
};

// ---------------------------------------------------------------------------
// Grammar

TEST(FaultSchedule, ParsesTheReadmeExampleAndRoundTrips) {
  const auto sched = FaultSchedule::parse(
      "enospc@write:7; torn@rename:2; crash@fsync:3");
  EXPECT_FALSE(sched.empty());
  const std::string rendered = sched.render();
  EXPECT_EQ(rendered, "enospc@write:7; torn@rename:2; crash@fsync:3");
  // render() output is itself a valid schedule.
  EXPECT_EQ(FaultSchedule::parse(rendered).render(), rendered);
}

TEST(FaultSchedule, RejectsBadDirectivesWithTheirIndex) {
  const auto wantThrow = [](const char* spec, const char* needle) {
    try {
      FaultSchedule::parse(spec);
      FAIL() << "parse accepted: " << spec;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << spec << " -> " << e.what();
    }
  };
  wantThrow("eperm@write:1", "directive 1");
  wantThrow("enospc@write:1; torn@chmod:1", "directive 2");
  wantThrow("enospc@write:0", "positive");
  wantThrow("enospc@write:p=1.5", "[0, 1]");
  wantThrow("enospc@write:2:p=0.5", "not both");
  wantThrow("enospc", "needs p=");
  wantThrow("enospc@write:path=", "empty path=");
}

TEST(FaultSchedule, NthCountsOnlyMatchingCallsAndFiresOnce) {
  auto sched = FaultSchedule::parse("eio@write:3");
  EXPECT_EQ(sched.decide(Op::kFsync, "x").fault, Fault::kNone);
  EXPECT_EQ(sched.decide(Op::kWrite, "x").fault, Fault::kNone);
  EXPECT_EQ(sched.decide(Op::kWrite, "x").fault, Fault::kNone);
  EXPECT_EQ(sched.decide(Op::kWrite, "x").fault, Fault::kEio);  // 3rd write
  EXPECT_EQ(sched.decide(Op::kWrite, "x").fault, Fault::kNone);  // one-shot
}

TEST(FaultSchedule, PathFilterRestrictsMatching) {
  auto sched = FaultSchedule::parse("enospc@write:path=.rec");
  EXPECT_EQ(sched.decide(Op::kWrite, "/tmp/ckpt/sweep.ckpt").fault,
            Fault::kNone);
  EXPECT_EQ(sched.decide(Op::kWrite, "/tmp/cache/ab/abc.rec.tmp.1").fault,
            Fault::kEnospc);
}

TEST(FaultSchedule, SeededProbabilisticDrawsAreDeterministic) {
  const auto run = [] {
    auto sched = FaultSchedule::parse("eio:p=0.3; seed=42");
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i)
      fired.push_back(sched.decide(Op::kWrite, "x").fault != Fault::kNone);
    return fired;
  };
  const auto a = run(), b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

// ---------------------------------------------------------------------------
// File wrapper semantics

TEST(IoFile, ShortAndEintrFaultsAreAbsorbedByTheRetryLoop) {
  ScheduleGuard guard;
  const std::string dir = freshDir("retry");
  const std::string path = dir + "/f";
  installFaultSchedule(FaultSchedule::parse("short@write:1; eintr@write:2"));
  File f = File::createTrunc(path);
  ASSERT_TRUE(f.valid());
  const std::string data(1000, 'x');
  EXPECT_TRUE(f.writeAll(data));
  EXPECT_TRUE(f.sync());
  EXPECT_TRUE(f.close());
  EXPECT_EQ(fs::file_size(path), data.size());
}

TEST(IoFile, EnospcFailsTheWriteWithErrno) {
  ScheduleGuard guard;
  const std::string dir = freshDir("enospc");
  installFaultSchedule(FaultSchedule::parse("enospc@write:1"));
  File f = File::createTrunc(dir + "/f");
  ASSERT_TRUE(f.valid());
  EXPECT_FALSE(f.writeAll("payload"));
  EXPECT_EQ(f.errnoValue(), ENOSPC);
}

TEST(IoFile, TornWriteLeavesHalfTheBytes) {
  ScheduleGuard guard;
  const std::string dir = freshDir("torn");
  const std::string path = dir + "/f";
  installFaultSchedule(FaultSchedule::parse("torn@write:1"));
  File f = File::createTrunc(path);
  ASSERT_TRUE(f.valid());
  const std::string data(100, 'y');
  EXPECT_FALSE(f.writeAll(data));
  f.close();
  EXPECT_EQ(fs::file_size(path), data.size() / 2);
}

TEST(IoFile, WriteFileDurableCleansUpItsTempOnFailure) {
  ScheduleGuard guard;
  const std::string dir = freshDir("durable");
  const std::string path = dir + "/out";
  installFaultSchedule(FaultSchedule::parse("enospc@fsync:1"));
  EXPECT_FALSE(writeFileDurable(path, ".tmp", "body"));
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  clearFaultSchedule();
  EXPECT_TRUE(writeFileDurable(path, ".tmp", "body"));
  std::ifstream in(path);
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, "body");
}

// ---------------------------------------------------------------------------
// Cache invariants under injected faults

exp::Scenario smallScenario() {
  exp::Scenario s = exp::parseScenario("dftc/central/ring:16");
  s.trials = 2;
  return s;
}

TEST(CacheFaults, EnospcStoreIsACountedFailureAndRaisesDegraded) {
  ScheduleGuard guard;
  serve::ResultCache cache(freshDir("cache-enospc"));
  const exp::Scenario s = smallScenario();
  installFaultSchedule(FaultSchedule::parse("enospc@write:path=.rec"));
  const auto degraded = [] {
    return obs::Registry::global().gauge("serve_degraded").value();
  };
  EXPECT_FALSE(cache.store(s, "payload"));
  EXPECT_EQ(cache.counters().storeFailures, 1u);
  EXPECT_EQ(degraded(), 1);
  clearFaultSchedule();
  EXPECT_TRUE(cache.store(s, "payload"));  // disk "recovers"
  EXPECT_EQ(degraded(), 0);
  EXPECT_EQ(cache.fetch(s).value(), "payload");
}

TEST(CacheFaults, TornRenameReadsAsACountedMissNeverAThrow) {
  ScheduleGuard guard;
  serve::ResultCache cache(freshDir("cache-torn"));
  const exp::Scenario s = smallScenario();
  installFaultSchedule(FaultSchedule::parse("torn@rename:1"));
  // The store itself "succeeds" — torn@rename models data blocks lost
  // AFTER the rename was committed, which no writer can observe.
  EXPECT_TRUE(cache.store(s, std::string(64, 'p')));
  clearFaultSchedule();
  EXPECT_FALSE(cache.fetch(s).has_value());
  EXPECT_EQ(cache.counters().badRecords, 1u);
}

// ---------------------------------------------------------------------------
// CrashPointRunner: fork, crash at one site, assert recovery invariants

/// Runs `work` in a forked child under `spec`; returns the child's exit
/// code (io::kCrashExitCode when the injected crash fired, 0 when the
/// workload outlived the schedule).
int crashChild(const std::string& spec, const std::function<void()>& work) {
  fflush(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    installFaultSchedule(FaultSchedule::parse(spec));
    work();
    std::_Exit(0);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(CrashPointRunner, CacheStoreSurvivesACrashAtEveryFaultSite) {
  // One store() issues: mkdir(subdir), open(temp), write(record),
  // fsync(file), close(file), rename, fsync(parent dir).  The dir fd's
  // open/close inside atomicReplace are raw (not fault sites).
  const struct { const char* op; int calls; } kSites[] = {
      {"mkdir", 1}, {"open", 1}, {"write", 1},
      {"fsync", 2}, {"rename", 1}, {"close", 1},
  };
  const exp::Scenario s = smallScenario();
  const std::string payload(128, 'z');
  for (const auto& site : kSites) {
    for (int n = 1; n <= site.calls; ++n) {
      const std::string dir =
          freshDir(std::string("crash-") + site.op + std::to_string(n));
      const std::string spec =
          std::string("crash@") + site.op + ":" + std::to_string(n);
      const int code = crashChild(spec, [&] {
        serve::ResultCache cache(dir);
        cache.store(s, payload);
      });
      EXPECT_EQ(code, kCrashExitCode) << spec << " did not crash";
      // Recovery: a fresh cache over the same dir must answer with the
      // exact payload or a (possibly counted) miss — never a throw.
      serve::ResultCache after(dir);
      const auto got = after.fetch(s);
      if (got) EXPECT_EQ(*got, payload) << spec;
      // The record path holds no torn garbage a reader would trust:
      // either a complete record (hit above) or nothing readable.
      const auto c = after.counters();
      EXPECT_EQ(c.hits + c.misses, 1u) << spec;
    }
  }
}

TEST(CrashPointRunner, SpillWorkloadRestartsCleanlyAfterAnyWriteCrash) {
  const std::uint64_t kIds = 300, kCap = 100;
  const auto workload = [&](const std::string& dir) {
    mc::FrontierSpill spill(kCap, dir);
    std::vector<std::uint64_t> ids(kIds);
    for (std::uint64_t i = 0; i < kIds; ++i) ids[i] = i * 7 + 1;
    // Batched appends so the capacity trips three times (3 runs, each
    // a header write + a payload write = write sites 1..6).
    for (std::uint64_t at = 0; at < kIds; at += 50)
      spill.append(ids.data() + at, 50);
    std::vector<std::uint64_t> out, chunk;
    while (spill.drainChunk(chunk, 64))
      out.insert(out.end(), chunk.begin(), chunk.end());
    if (out.size() != kIds) std::_Exit(9);  // silent loss — must not happen
  };
  // 3 flushes x (header write + payload write) = write sites 1..6.
  for (int n = 1; n <= 6; ++n) {
    const std::string dir = freshDir("spill-crash-" + std::to_string(n));
    const std::string spec = "crash@write:" + std::to_string(n);
    EXPECT_EQ(crashChild(spec, [&] { workload(dir); }), kCrashExitCode)
        << spec;
    // Restart: the crashed run's orphan files must not disturb a fresh
    // run in the same directory (prefixes are unique per object).
    workload(dir);
  }
}

// ---------------------------------------------------------------------------
// Spill run integrity: corruption is a NAMED error, never silent loss

TEST(SpillIntegrity, CorruptedRunFailsDrainWithANamedError) {
  struct Case { std::size_t offset; const char* what; };
  // Offset 0 hits the magic; offset 30 hits payload bytes (24-byte
  // header + 6) so the CRC must catch it.
  for (const Case& c : {Case{0, "bad magic"}, Case{30, "crc mismatch"}}) {
    const std::string dir = freshDir("spill-corrupt-" +
                                     std::to_string(c.offset));
    mc::FrontierSpill spill(4, dir);
    std::vector<std::uint64_t> ids = {11, 22, 33, 44};
    spill.append(ids.data(), ids.size());  // capacity hit: one run file
    ASSERT_EQ(spill.runsWritten(), 1u);
    fs::path run;
    for (const auto& entry : fs::directory_iterator(dir))
      if (entry.path().extension() == ".run") run = entry.path();
    ASSERT_FALSE(run.empty());
    {
      std::fstream f(run, std::ios::in | std::ios::out | std::ios::binary);
      f.seekp(static_cast<std::streamoff>(c.offset));
      f.put('Q');
    }
    std::vector<std::uint64_t> chunk;
    try {
      while (spill.drainChunk(chunk, 16)) {}
      FAIL() << "corrupt run at offset " << c.offset << " drained silently";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(c.what), std::string::npos)
          << e.what();
    }
  }
}

TEST(SpillIntegrity, TruncatedRunFailsDrainWithANamedError) {
  const std::string dir = freshDir("spill-trunc");
  mc::FrontierSpill spill(4, dir);
  std::vector<std::uint64_t> ids = {1, 2, 3, 4};
  spill.append(ids.data(), ids.size());
  fs::path run;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().extension() == ".run") run = entry.path();
  ASSERT_FALSE(run.empty());
  fs::resize_file(run, fs::file_size(run) - 8);  // lose the last id
  std::vector<std::uint64_t> chunk;
  EXPECT_THROW(
      { while (spill.drainChunk(chunk, 16)) {} }, std::runtime_error);
}

}  // namespace
}  // namespace ssno::io
