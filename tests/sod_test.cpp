// Tests for the sense-of-direction layer (Chapter 5 outlook, [14]):
// walk coding, cross-hop translation, and the consistency properties on
// stabilized orientations.
#include "orientation/sod.hpp"

#include <gtest/gtest.h>

#include "core/daemon.hpp"
#include "core/graph.hpp"
#include "core/scheduler.hpp"
#include "orientation/dftno.hpp"
#include "sptree/dfs_tree.hpp"

namespace ssno {
namespace {

Orientation canonical(const Graph& g) {
  return inducedChordalOrientation(g, portOrderDfsPreorder(g),
                                   g.nodeCount());
}

TEST(WalkCode, EmptyWalkIsZero) {
  const Graph g = Graph::ring(5);
  const Orientation o = canonical(g);
  EXPECT_EQ(walkCode(o, 2, {}), 0);
}

TEST(WalkCode, EqualsNameDifference) {
  Rng rng(1);
  const Graph g = Graph::randomConnected(12, 0.3, rng);
  const Orientation o = canonical(g);
  // Random walks of random length: code must equal η_from − η_end mod N.
  for (int trial = 0; trial < 200; ++trial) {
    const NodeId from = rng.below(12);
    std::vector<Port> ports;
    NodeId cur = from;
    const int len = rng.below(8);
    for (int i = 0; i < len; ++i) {
      const Port l = rng.below(g.degree(cur));
      ports.push_back(l);
      cur = g.neighborAt(cur, l);
    }
    const auto code = walkCode(o, from, ports);
    ASSERT_TRUE(code.has_value());
    EXPECT_EQ(*code, chordalDistance(o.nameOf(from), o.nameOf(cur),
                                     o.modulus));
    EXPECT_EQ(nameFromCode(o, from, *code), o.nameOf(cur));
    EXPECT_EQ(walkEnd(g, from, ports), cur);
  }
}

TEST(WalkCode, RejectsBadPort) {
  const Graph g = Graph::path(3);
  const Orientation o = canonical(g);
  EXPECT_FALSE(walkCode(o, 0, {5}).has_value());
  EXPECT_FALSE(walkEnd(g, 0, {5}).has_value());
}

TEST(Translate, MatchesDirectCode) {
  const Graph g = Graph::figure221();
  const Orientation o = canonical(g);
  for (NodeId p = 0; p < g.nodeCount(); ++p)
    for (Port l = 0; l < g.degree(p); ++l)
      for (NodeId t = 0; t < g.nodeCount(); ++t) {
        const int atP = chordalDistance(o.nameOf(p), o.nameOf(t), o.modulus);
        const NodeId q = g.neighborAt(p, l);
        const int atQ = chordalDistance(o.nameOf(q), o.nameOf(t), o.modulus);
        EXPECT_EQ(translateCode(o, p, l, atP), atQ);
      }
}

TEST(Consistency, HoldsOnCanonicalOrientations) {
  Rng rng(2);
  for (const Graph& g :
       {Graph::ring(6), Graph::complete(5), Graph::grid(2, 4),
        Graph::figure221(), Graph::randomConnected(9, 0.3, rng)}) {
    const Orientation o = canonical(g);
    EXPECT_TRUE(hasConsistentCoding(o, 4)) << "n=" << g.nodeCount();
    EXPECT_TRUE(hasConsistentTranslation(o)) << "n=" << g.nodeCount();
  }
}

TEST(Consistency, DetectsDuplicateNames) {
  const Graph g = Graph::path(3);
  // Duplicate names break the walk-code bijection.
  const Orientation bad = inducedChordalOrientation(g, {0, 1, 0}, 3);
  EXPECT_FALSE(hasConsistentCoding(bad, 3));
}

TEST(Consistency, DetectsCorruptLabel) {
  const Graph g = Graph::ring(5);
  Orientation o = canonical(g);
  o.labelAt(2, 1) = (o.labelAt(2, 1) + 1) % 5;
  EXPECT_FALSE(hasConsistentCoding(o, 3));
}

TEST(SelfStabilizedSoD, DftnoOrientationIsASenseOfDirection) {
  // The Chapter-5 payoff: after DFTNO stabilizes (from an arbitrary
  // configuration), the resulting labels ARE a consistent chordal sense
  // of direction — i.e. a self-stabilizing SoD.
  Dftno dftno(Graph::grid(3, 3));
  Rng rng(3);
  dftno.randomize(rng);
  RoundRobinDaemon daemon;
  Simulator sim(dftno, daemon, rng);
  ASSERT_TRUE(
      sim.runUntil([&dftno] { return dftno.isLegitimate(); }, 20'000'000)
          .converged);
  const Orientation o = dftno.orientation();
  EXPECT_TRUE(hasConsistentCoding(o, 4));
  EXPECT_TRUE(hasConsistentTranslation(o));
}

TEST(SelfStabilizedSoD, ReferencePassingAlongAPath) {
  // A reference to node t, created at s, handed hop by hop along any
  // path, still denotes t at the far end.
  Rng rng(4);
  const Graph g = Graph::randomConnected(10, 0.35, rng);
  const Orientation o = canonical(g);
  for (int trial = 0; trial < 100; ++trial) {
    const NodeId s = rng.below(10);
    const NodeId t = rng.below(10);
    int code = chordalDistance(o.nameOf(s), o.nameOf(t), o.modulus);
    NodeId cur = s;
    for (int hop = 0; hop < 6; ++hop) {
      const Port l = rng.below(g.degree(cur));
      code = translateCode(o, cur, l, code);
      cur = g.neighborAt(cur, l);
      EXPECT_EQ(nameFromCode(o, cur, code), o.nameOf(t));
    }
  }
}

}  // namespace
}  // namespace ssno
