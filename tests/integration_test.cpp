// End-to-end integration: full stack from adversarial initial
// configurations — substrate convergence, orientation convergence,
// specification checks, fault injection and re-stabilization, and
// applications running on the stabilized orientation.  This is the
// "abstract-level" behavior of the paper exercised as one system.
#include <gtest/gtest.h>

#include "apps/broadcast.hpp"
#include "apps/routing.hpp"
#include "core/daemon.hpp"
#include "core/fault.hpp"
#include "core/graph.hpp"
#include "core/scheduler.hpp"
#include "orientation/dftno.hpp"
#include "orientation/stno.hpp"

namespace ssno {
namespace {

TEST(Integration, BothProtocolsOrientTheSameNetwork) {
  Rng topo(1);
  const Graph g = Graph::randomConnected(14, 0.25, topo);
  // DFTNO path.
  Dftno dftno(g);
  Rng rng1(2);
  dftno.randomize(rng1);
  RoundRobinDaemon d1;
  Simulator sim1(dftno, d1, rng1);
  ASSERT_TRUE(
      sim1.runUntil([&dftno] { return dftno.isLegitimate(); }, 30'000'000)
          .converged);
  // STNO path (self-stabilizing BFS substrate).
  Stno stno(g);
  Rng rng2(3);
  stno.randomize(rng2);
  DistributedDaemon d2;
  Simulator sim2(stno, d2, rng2);
  ASSERT_TRUE(sim2.runToQuiescence(30'000'000).terminal);
  // Both deliver valid chordal orientations of the same network (not
  // necessarily the same one: the trees differ).
  EXPECT_TRUE(satisfiesSpec(dftno.orientation()));
  EXPECT_TRUE(satisfiesSpec(stno.orientation()));
}

TEST(Integration, DftnoRecoversFromTransientFaults) {
  Dftno dftno(Graph::grid(3, 3));
  Rng rng(4);
  dftno.randomize(rng);
  RoundRobinDaemon daemon;
  Simulator sim(dftno, daemon, rng);
  ASSERT_TRUE(
      sim.runUntil([&dftno] { return dftno.isLegitimate(); }, 30'000'000)
          .converged);
  FaultInjector inj(dftno);
  for (int k : {1, 3, 9}) {
    inj.corruptK(k, rng);
    const RunStats stats =
        sim.runUntil([&dftno] { return dftno.isLegitimate(); }, 30'000'000);
    EXPECT_TRUE(stats.converged) << "k=" << k;
    EXPECT_TRUE(dftno.satisfiesSpecNow());
  }
}

TEST(Integration, StnoRecoversFromCrashReset) {
  const Graph g = Graph::lollipop(4, 4);
  Stno stno(g);
  Rng rng(5);
  stno.randomize(rng);
  AdversarialDaemon daemon;
  Simulator sim(stno, daemon, rng);
  ASSERT_TRUE(sim.runToQuiescence(30'000'000).terminal);
  FaultInjector inj(stno);
  for (NodeId victim : {1, 5, 7}) {
    inj.crashReset(victim);
    const RunStats stats = sim.runToQuiescence(30'000'000);
    EXPECT_TRUE(stats.terminal) << "victim " << victim;
    EXPECT_TRUE(satisfiesSpec(stno.orientation()));
  }
}

TEST(Integration, ApplicationsRunOnStabilizedOrientation) {
  const Graph g = Graph::torus(3, 4);
  Dftno dftno(g);
  Rng rng(6);
  dftno.randomize(rng);
  RoundRobinDaemon daemon;
  Simulator sim(dftno, daemon, rng);
  ASSERT_TRUE(
      sim.runUntil([&dftno] { return dftno.isLegitimate(); }, 60'000'000)
          .converged);
  const Orientation o = dftno.orientation();
  // Traversal covers the torus in 2(n−1) messages.
  const TraversalResult t = traverseWithOrientation(o, g.root());
  EXPECT_TRUE(t.coveredAll(g));
  EXPECT_EQ(t.messages, 2 * (g.nodeCount() - 1));
  // Routing with detours delivers a decent fraction of pairs.
  const RoutingStats rs = evaluateRouting(o, 3);
  EXPECT_GT(static_cast<double>(rs.delivered) / rs.pairs, 0.5);
}

TEST(Integration, RepeatedFaultBurstsNeverWedgeTheSystem) {
  Dftno dftno(Graph::ring(7));
  Rng rng(7);
  RoundRobinDaemon daemon;
  Simulator sim(dftno, daemon, rng);
  FaultInjector inj(dftno);
  for (int burst = 0; burst < 20; ++burst) {
    inj.scrambleAll(rng);
    const RunStats stats =
        sim.runUntil([&dftno] { return dftno.isLegitimate(); }, 30'000'000);
    ASSERT_TRUE(stats.converged) << "burst " << burst;
  }
}

TEST(Integration, ModulusLargerThanNodeCountStillWorks) {
  // §2.2 allows N to be an UPPER BOUND on the number of processors; the
  // chordal arithmetic must hold for modulus > n as well.  (Our
  // protocols use N = n, but the checkers accept any modulus; verify
  // the math with a slack modulus.)
  const Graph g = Graph::path(4);
  const Orientation o =
      inducedChordalOrientation(g, {0, 2, 4, 6}, 8);
  EXPECT_TRUE(satisfiesSP1(o));
  EXPECT_TRUE(satisfiesSP2(o));
  EXPECT_TRUE(isLocallyOriented(o));
  EXPECT_TRUE(hasEdgeSymmetry(o));
}

}  // namespace
}  // namespace ssno
