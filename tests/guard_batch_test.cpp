// Batch guard-evaluation suite (the Protocol::evaluateGuards contract):
// every columnar kernel override must be bit-identical to the scalar
// per-node virtual enabled() loop — on raw masks over randomized
// configurations (including unaligned batch sizes: 1, word-boundary,
// full n), and on whole runs: forcing the scalar path through
// Simulator::setScalarGuardEval must reproduce the exact move
// sequences, round counts, and final configurations across the
// overriding protocols × daemons × topologies.  Also pins the sync
// engine's write-logging restore on the full-configuration path
// (non-neighborhood-local guards): execute + undo must round-trip the
// configuration exactly, and a re-execute must land on the same post
// state.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/daemon.hpp"
#include "core/rng.hpp"
#include "core/scheduler.hpp"
#include "core/sync_engine.hpp"
#include "dftc/dftc.hpp"
#include "orientation/baseline.hpp"
#include "orientation/dftno.hpp"
#include "orientation/stno.hpp"
#include "sptree/bfs_tree.hpp"

namespace ssno {
namespace {

enum class Proto { kDftc, kDftno, kStno, kBfsTree };

std::unique_ptr<Protocol> makeProto(Proto kind, const Graph& g) {
  switch (kind) {
    case Proto::kDftc: return std::make_unique<Dftc>(g);
    case Proto::kDftno: return std::make_unique<Dftno>(g);
    case Proto::kStno: return std::make_unique<Stno>(g);
    case Proto::kBfsTree: return std::make_unique<BfsTree>(g);
  }
  return nullptr;
}

constexpr Proto kProtos[] = {Proto::kDftc, Proto::kDftno, Proto::kStno,
                             Proto::kBfsTree};

std::vector<Graph> topologies() {
  Rng rng(77);
  std::vector<Graph> out;
  out.push_back(Graph::ring(12));
  out.push_back(Graph::grid(3, 4));
  out.push_back(Graph::complete(6));
  out.push_back(Graph::randomConnected(14, 0.3, rng));
  return out;
}

/// The scalar reference: the Protocol-default per-node enabled() loop.
std::vector<std::uint64_t> scalarMasks(const Protocol& proto,
                                       const std::vector<NodeId>& nodes) {
  std::vector<std::uint64_t> masks(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::uint64_t mask = 0;
    for (int a = 0; a < proto.actionCount(); ++a)
      if (proto.enabled(nodes[i], a)) mask |= std::uint64_t{1} << a;
    masks[i] = mask;
  }
  return masks;
}

void expectKernelMatchesScalar(const Protocol& proto,
                               const std::vector<NodeId>& nodes) {
  std::vector<std::uint64_t> masks(nodes.size());
  proto.evaluateGuards(nodes, masks.data());
  const std::vector<std::uint64_t> ref = scalarMasks(proto, nodes);
  for (std::size_t i = 0; i < nodes.size(); ++i)
    EXPECT_EQ(masks[i], ref[i]) << "node " << nodes[i];
}

TEST(GuardBatch, KernelsMatchScalarOnRandomizedStates) {
  for (const Graph& g : topologies()) {
    for (const Proto kind : kProtos) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const std::unique_ptr<Protocol> proto = makeProto(kind, g);
        Rng rng(seed);
        proto->randomize(rng);
        std::vector<NodeId> all(static_cast<std::size_t>(g.nodeCount()));
        for (NodeId p = 0; p < g.nodeCount(); ++p)
          all[static_cast<std::size_t>(p)] = p;
        expectKernelMatchesScalar(*proto, all);
      }
    }
  }
}

TEST(GuardBatch, UnalignedBatchSizes) {
  // n = 130 straddles two 64-bit words and exceeds the AVX2 kernels'
  // 8-lane width; batches of size 1, 63, 64, 65, and full-n hit the
  // word-boundary and vector-tail paths.  Batches are random sorted
  // duplicate-free subsets, per the evaluateGuards contract.
  const Graph g = Graph::ring(130);
  for (const Proto kind : kProtos) {
    const std::unique_ptr<Protocol> proto = makeProto(kind, g);
    Rng rng(42);
    proto->randomize(rng);
    std::vector<NodeId> ids(static_cast<std::size_t>(g.nodeCount()));
    for (NodeId p = 0; p < g.nodeCount(); ++p)
      ids[static_cast<std::size_t>(p)] = p;
    for (const std::size_t size :
         {std::size_t{1}, std::size_t{63}, std::size_t{64}, std::size_t{65},
          ids.size()}) {
      // Partial Fisher-Yates, then sort the chosen prefix.
      for (std::size_t i = 0; i < size; ++i)
        std::swap(ids[i],
                  ids[i + static_cast<std::size_t>(rng.below(
                              static_cast<int>(ids.size() - i)))]);
      std::vector<NodeId> nodes(ids.begin(),
                                ids.begin() + static_cast<std::ptrdiff_t>(size));
      std::sort(nodes.begin(), nodes.end());
      expectKernelMatchesScalar(*proto, nodes);
    }
  }
}

struct RunRecord {
  std::vector<int> config;
  StepCount moves = 0;
  StepCount steps = 0;
  StepCount rounds = 0;
  std::vector<Move> enabled;
};

RunRecord runPipeline(Proto kind, const Graph& g, DaemonKind daemonKind,
                      std::uint64_t seed, bool scalarGuards) {
  const std::unique_ptr<Protocol> proto = makeProto(kind, g);
  Rng rng(seed);
  proto->randomize(rng);
  const std::unique_ptr<Daemon> daemon = makeDaemon(daemonKind);
  Simulator sim(*proto, *daemon, rng);
  sim.setScalarGuardEval(scalarGuards);
  RunRecord rec;
  const RunStats stats = sim.runToQuiescence(4000);
  rec.config = proto->rawConfiguration();
  rec.moves = stats.moves;
  rec.steps = stats.steps;
  rec.rounds = stats.rounds;
  rec.enabled = proto->enabledMoves();
  return rec;
}

TEST(GuardBatch, RunsBitIdenticalWithScalarKnob) {
  const DaemonKind daemons[] = {DaemonKind::kCentral,
                                DaemonKind::kDistributed,
                                DaemonKind::kSynchronous};
  std::uint64_t seed = 1000;
  for (const Graph& g : topologies()) {
    for (const Proto kind : kProtos) {
      for (const DaemonKind daemon : daemons) {
        ++seed;
        const RunRecord batch = runPipeline(kind, g, daemon, seed, false);
        const RunRecord scalar = runPipeline(kind, g, daemon, seed, true);
        EXPECT_EQ(batch.config, scalar.config);
        EXPECT_EQ(batch.moves, scalar.moves);
        EXPECT_EQ(batch.steps, scalar.steps);
        EXPECT_EQ(batch.rounds, scalar.rounds);
        EXPECT_EQ(batch.enabled, scalar.enabled);
      }
    }
  }
}

/// One enabled move per processor, node-ascending — a maximal
/// simultaneous selection as the engine expects it.
std::vector<Move> maximalSelection(const Protocol& proto) {
  std::vector<Move> moves;
  NodeId lastNode = kNoNode;
  for (const Move& m : proto.enabledMoves()) {
    if (m.node == lastNode) continue;
    moves.push_back(m);
    lastNode = m.node;
  }
  return moves;
}

TEST(GuardBatch, WriteLogRestoreRoundtripOnFullConfigurationPath) {
  // InitBasedOrientation: non-neighborhood-local guards WITH arenas —
  // the write-logging full-configuration path.  execute + undo must
  // restore the pre-step configuration exactly, and re-executing must
  // reproduce the same post state.
  const Graph g = Graph::grid(4, 4);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    InitBasedOrientation proto(g);
    Rng rng(seed);
    proto.randomize(rng);
    SimultaneousEngine engine(proto);
    const std::vector<Move> moves = maximalSelection(proto);
    if (moves.empty()) continue;
    const std::vector<int> pre = proto.rawConfiguration();
    engine.execute(moves);
    const std::vector<int> post = proto.rawConfiguration();
    engine.undo();
    EXPECT_EQ(proto.rawConfiguration(), pre);
    engine.execute(moves);
    EXPECT_EQ(proto.rawConfiguration(), post);
  }
}

TEST(GuardBatch, BatchedExecuteUndoRoundtrip) {
  // The same roundtrip through the batched doExecuteSimultaneous fast
  // path (Dftc/Dftno opt in) and the rollback path (Stno/BfsTree).
  for (const Proto kind : kProtos) {
    const Graph g = Graph::ring(12);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const std::unique_ptr<Protocol> proto = makeProto(kind, g);
      Rng rng(seed);
      proto->randomize(rng);
      SimultaneousEngine engine(*proto);
      const std::vector<Move> moves = maximalSelection(*proto);
      if (moves.empty()) continue;
      const std::vector<int> pre = proto->rawConfiguration();
      engine.execute(moves);
      const std::vector<int> post = proto->rawConfiguration();
      engine.undo();
      EXPECT_EQ(proto->rawConfiguration(), pre);
      engine.execute(moves);
      EXPECT_EQ(proto->rawConfiguration(), post);
    }
  }
}

}  // namespace
}  // namespace ssno
