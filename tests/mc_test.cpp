// Unit tests for the src/mc parallel model-checking engine: the
// bit-packed state codec, the sharded store, the spill tier, and the
// explorer's verdicts/determinism on the toy protocols with known
// defects.
#include "mc/explorer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/graph.hpp"
#include "dftc/dftc.hpp"
#include "mc/spill.hpp"
#include "mc/state_codec.hpp"
#include "mc/store.hpp"
#include "toy_protocols.hpp"

namespace ssno::mc {
namespace {

TEST(StateCodec, RoundTripsConfigurations) {
  Dftc dftc(Graph::figure311());
  const StateCodec codec(dftc);
  std::vector<std::uint64_t> key(static_cast<std::size_t>(codec.words()));
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    dftc.randomize(rng);
    const std::vector<std::uint64_t> codes = dftc.encodeConfiguration();
    codec.encode(dftc, key.data());
    for (NodeId p = 0; p < dftc.graph().nodeCount(); ++p)
      EXPECT_EQ(codec.nodeCode(key.data(), p),
                codes[static_cast<std::size_t>(p)]);
    // Decode into a second instance and compare canonical encodings.
    Dftc other(Graph::figure311());
    codec.decode(key.data(), other);
    EXPECT_EQ(other.encodeConfiguration(), codes);
  }
}

TEST(StateCodec, PatchMatchesFullEncode) {
  Dftc dftc(Graph::path(3));
  const StateCodec codec(dftc);
  std::vector<std::uint64_t> key(static_cast<std::size_t>(codec.words()));
  std::vector<std::uint64_t> patched = key;
  Rng rng(9);
  dftc.randomize(rng);
  codec.encode(dftc, key.data());
  // Executing a move and patching the acted node must equal re-encoding.
  const std::vector<Move> moves = dftc.enabledMoves();
  ASSERT_FALSE(moves.empty());
  const Move m = moves.front();
  dftc.execute(m.node, m.action);
  patched.assign(key.begin(), key.end());
  codec.setNodeCode(patched.data(), m.node, dftc.encodeNode(m.node));
  std::vector<std::uint64_t> full(static_cast<std::size_t>(codec.words()));
  codec.encode(dftc, full.data());
  EXPECT_EQ(patched, full);
}

TEST(StateCodec, IndexEnumerationIsExhaustive) {
  ZeroProtocol proto(Graph::path(3), 3);
  const StateCodec codec(proto);
  ASSERT_TRUE(codec.indexable());
  EXPECT_EQ(codec.totalStates(), 27u);
  std::set<std::vector<std::uint64_t>> seen;
  std::vector<std::uint64_t> key(static_cast<std::size_t>(codec.words()));
  for (std::uint64_t i = 0; i < codec.totalStates(); ++i) {
    codec.indexToKey(i, key.data());
    seen.insert(key);
  }
  EXPECT_EQ(seen.size(), 27u);
}

TEST(StateStore, InternDeduplicatesAndKeepsMeta) {
  StateStore store(/*words=*/2, /*capacity=*/1024);
  const std::uint64_t keyA[2] = {42, 7};
  const std::uint64_t keyB[2] = {42, 8};
  auto never = [] { return false; };
  const auto a1 = store.intern(keyA, 1234, 0, never);
  EXPECT_TRUE(a1.inserted);
  const auto a2 = store.intern(keyA, 1234, 3, never);
  EXPECT_FALSE(a2.inserted);
  EXPECT_EQ(a2.id, a1.id);
  EXPECT_EQ(a2.depth, 0u);  // first-discovery depth sticks
  const auto b = store.intern(keyB, 1234, 0, [] { return true; });
  EXPECT_TRUE(b.inserted);
  EXPECT_NE(b.id, a1.id);
  EXPECT_TRUE(store.legit(b.id));
  EXPECT_FALSE(store.legit(a1.id));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.find(keyA, 1234), a1.id);
}

TEST(StateStore, CanonicalMinParentWinsRegardlessOfOrder) {
  StateStore store(1, 1024);
  auto no = [] { return false; };
  const std::uint64_t parentSmall[1] = {5};
  const std::uint64_t parentBig[1] = {9};
  const std::uint64_t child[1] = {1};
  const auto ps = store.intern(parentSmall, 50, 0, no);
  const auto pb = store.intern(parentBig, 90, 0, no);
  // Discover the child from the big parent first, then the small one.
  (void)store.intern(child, 10, 1, no, parentBig, pb.id, 3);
  (void)store.intern(child, 10, 1, no, parentSmall, ps.id, 7);
  const std::uint64_t id = store.find(child, 10);
  EXPECT_EQ(store.parentOf(id), ps.id);
  EXPECT_EQ(store.parentMoveOf(id), 7u);
  // Reversed arrival order yields the same parent.
  StateStore other(1, 1024);
  const auto ps2 = other.intern(parentSmall, 50, 0, no);
  const auto pb2 = other.intern(parentBig, 90, 0, no);
  (void)other.intern(child, 10, 1, no, parentSmall, ps2.id, 7);
  (void)other.intern(child, 10, 1, no, parentBig, pb2.id, 3);
  EXPECT_EQ(other.parentOf(other.find(child, 10)), ps2.id);
}

TEST(FrontierSpill, SpillsAndDrainsAllIds) {
  FrontierSpill spill(/*memCapacity=*/8);
  std::vector<std::uint64_t> in;
  for (std::uint64_t i = 0; i < 100; ++i) in.push_back(i * 3);
  spill.append(in.data(), in.size());
  EXPECT_EQ(spill.size(), 100u);
  EXPECT_GE(spill.runsWritten(), 1u);
  std::multiset<std::uint64_t> drained;
  std::vector<std::uint64_t> chunk;
  while (spill.drainChunk(chunk, 7))
    drained.insert(chunk.begin(), chunk.end());
  EXPECT_EQ(drained.size(), 100u);
  EXPECT_EQ(drained, std::multiset<std::uint64_t>(in.begin(), in.end()));
}

ParallelChecker::Factory zeroFactory(int n, int domain) {
  return [n, domain] {
    return std::make_unique<ZeroProtocol>(Graph::path(n), domain);
  };
}

bool zeroLegit(Protocol& p) {
  return static_cast<ZeroProtocol&>(p).allZero();
}

TEST(ParallelChecker, AcceptsSelfStabilizingToy) {
  ParallelChecker pc(zeroFactory(3, 3), zeroLegit);
  Options opt;
  const Result res = pc.checkFullSpace(opt);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_EQ(res.statesExplored, 27u);
  EXPECT_TRUE(res.trace.empty());
}

TEST(ParallelChecker, DetectsIllegitimateCycleWithTrace) {
  ParallelChecker pc(
      [] { return std::make_unique<OscillateProtocol>(Graph::path(2)); },
      [](Protocol& p) {
        return static_cast<OscillateProtocol&>(p).allZero();
      });
  Options opt;
  const Result res = pc.checkFullSpace(opt);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("cycle"), std::string::npos) << res.failure;
  EXPECT_FALSE(res.trace.empty());
}

TEST(ParallelChecker, DetectsDeadlock) {
  ParallelChecker pc(
      [] { return std::make_unique<StuckProtocol>(Graph::path(2)); },
      [](Protocol& p) { return static_cast<StuckProtocol&>(p).allZero(); });
  Options opt;
  const Result res = pc.checkFullSpace(opt);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("terminal"), std::string::npos) << res.failure;
}

TEST(ParallelChecker, DetectsClosureViolation) {
  ParallelChecker pc(zeroFactory(2, 2), [](Protocol& p) {
    auto& z = static_cast<ZeroProtocol&>(p);
    return z.value(0) == 1 || (z.value(0) == 0 && z.value(1) == 0);
  });
  Options opt;
  const Result res = pc.checkFullSpace(opt);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("closure"), std::string::npos) << res.failure;
}

TEST(ParallelChecker, RefusesOversizedSpace) {
  ParallelChecker pc(zeroFactory(3, 100), zeroLegit);
  Options opt;
  opt.maxStates = 1000;
  const Result res = pc.checkFullSpace(opt);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("too large"), std::string::npos);
}

TEST(ParallelChecker, ReachableExploresOnlySeededRegion) {
  ParallelChecker pc(zeroFactory(3, 3), zeroLegit);
  Options opt;
  const Result res = pc.checkReachable({{2, 1, 0}}, opt);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_LT(res.statesExplored, 27u);
  EXPECT_GE(res.statesExplored, 4u);
}

TEST(ParallelChecker, SpillTierPreservesResults) {
  // A 4-id RAM frontier forces run files on the 27-state toy.
  ParallelChecker pc(zeroFactory(3, 3), zeroLegit);
  Options plain;
  Options spilling;
  spilling.spillCapacity = 4;
  const Result a = pc.checkFullSpace(plain);
  const Result b = pc.checkFullSpace(spilling);
  EXPECT_TRUE(b.ok) << b.failure;
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.statesExplored, b.statesExplored);
  EXPECT_EQ(a.peakFrontier, b.peakFrontier);
  EXPECT_GE(b.spillRuns, 1u);

  // Same through a multi-level reachable exploration.
  Options spillReach;
  spillReach.spillCapacity = 3;
  const Result c = pc.checkReachable({{2, 2, 2}}, plain);
  const Result d = pc.checkReachable({{2, 2, 2}}, spillReach);
  EXPECT_EQ(c.ok, d.ok);
  EXPECT_EQ(c.statesExplored, d.statesExplored);
  EXPECT_EQ(c.peakFrontier, d.peakFrontier);
}

TEST(ParallelChecker, DftcVerdictAndFairnessModes) {
  auto factory = [] { return std::make_unique<Dftc>(Graph::path(2)); };
  auto legit = [](Protocol& p) {
    return static_cast<Dftc&>(p).isLegitimate();
  };
  Options opt;
  opt.fairness = Fairness::kWeaklyFair;
  opt.threads = 2;
  ParallelChecker pc(factory, legit);
  const Result res = pc.checkFullSpace(opt);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_EQ(res.statesExplored, 32u);  // root(2·2) × leaf(2·2·2·1)
}

}  // namespace
}  // namespace ssno::mc
