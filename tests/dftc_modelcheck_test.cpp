// Mechanical self-stabilization proofs (Definition 2.1.2) for the token
// circulation substrate and the composed DFTNO system, via exhaustive
// model checking on small networks: from EVERY configuration, EVERY
// central-daemon execution reaches the legitimacy predicate, and the
// predicate is closed.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/checker.hpp"
#include "core/graph.hpp"
#include "dftc/dftc.hpp"
#include "mc/explorer.hpp"
#include "orientation/dftno.hpp"

namespace ssno {
namespace {

CheckResult checkDftcFullSpace(Graph g, std::uint64_t maxConfigs) {
  Dftc dftc(std::move(g));
  ModelChecker mc(dftc, [&dftc] { return dftc.isLegitimate(); });
  // The substrate (like [10]) assumes a fair daemon; weak fairness at
  // action granularity is what the checker verifies.
  return mc.verifyFullSpace(maxConfigs, Fairness::kWeaklyFair);
}

TEST(DftcExhaustive, Path2) {
  const CheckResult res = checkDftcFullSpace(Graph::path(2), 1u << 10);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_EQ(res.configsExplored, 4u * 8u);  // root(2·2) × leaf(2·2·2·1)
}

TEST(DftcExhaustive, Path3) {
  const CheckResult res = checkDftcFullSpace(Graph::path(3), 1u << 16);
  EXPECT_TRUE(res.ok) << res.failure;
}

TEST(DftcExhaustive, Triangle) {
  const CheckResult res = checkDftcFullSpace(Graph::ring(3), 1u << 16);
  EXPECT_TRUE(res.ok) << res.failure;
}

TEST(DftcExhaustive, Path4) {
  const CheckResult res = checkDftcFullSpace(Graph::path(4), 1u << 20);
  EXPECT_TRUE(res.ok) << res.failure;
}

TEST(DftcExhaustive, Star4) {
  const CheckResult res = checkDftcFullSpace(Graph::star(4), 1u << 20);
  EXPECT_TRUE(res.ok) << res.failure;
}

TEST(DftcExhaustive, Cycle4) {
  const CheckResult res = checkDftcFullSpace(Graph::ring(4), 1u << 21);
  EXPECT_TRUE(res.ok) << res.failure;
}

TEST(DftcExhaustive, Paw) {
  // Triangle with a pendant vertex: mixes cycle and tree structure.
  const CheckResult res = checkDftcFullSpace(
      Graph(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}}), 1u << 22);
  EXPECT_TRUE(res.ok) << res.failure;
}

TEST(DftcExhaustive, Diamond) {
  // K4 minus an edge: two triangles sharing an edge — the densest
  // 4-node case with non-uniform degrees.
  const CheckResult res = checkDftcFullSpace(
      Graph(4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}}), 1u << 22);
  EXPECT_TRUE(res.ok) << res.failure;
}

TEST(DftcExhaustive, K4) {
  const CheckResult res = checkDftcFullSpace(Graph::complete(4), 1u << 23);
  EXPECT_TRUE(res.ok) << res.failure;
}

TEST(DftnoExhaustive, ComposedSystemOnPath2) {
  // Full product space of substrate AND orientation layer.
  Dftno dftno(Graph::path(2));
  ModelChecker mc(dftno, [&dftno] { return dftno.isLegitimate(); });
  const CheckResult res =
      mc.verifyFullSpace(1u << 12, Fairness::kWeaklyFair);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_EQ(res.configsExplored, 2048u);
}

// Erratum 4 regression (see DESIGN.md): with the paper's printed guard
// ¬Token(p) ∧ InvalidEdgelabel(p), the edge-label action is disabled for
// a moment every round (whenever the token visits p), so it is never
// continuously enabled: a weakly fair daemon may serve only token moves
// forever and the labeling never completes.  The checker exhibits the
// fair-feasible divergence; under strong fairness the paper's guard is
// fine.
TEST(DftnoExhaustive, PaperGuardNeedsStrongFairness) {
  {
    Dftno dftno(Graph::path(2), EdgeLabelGuard::kPaperFaithful);
    ModelChecker mc(dftno, [&dftno] { return dftno.isLegitimate(); });
    const CheckResult weak =
        mc.verifyFullSpace(1u << 12, Fairness::kWeaklyFair);
    EXPECT_FALSE(weak.ok);
    EXPECT_NE(weak.failure.find("fair-feasible cycle"), std::string::npos)
        << weak.failure;
  }
  {
    Dftno dftno(Graph::path(2), EdgeLabelGuard::kPaperFaithful);
    ModelChecker mc(dftno, [&dftno] { return dftno.isLegitimate(); });
    const CheckResult strong =
        mc.verifyFullSpace(1u << 12, Fairness::kStronglyFair);
    EXPECT_TRUE(strong.ok) << strong.failure;
  }
}

// The naive legitimacy predicate L_TC ∧ SP1 ∧ SP2 from the paper is not
// closed: a non-canonical (but SP1/SP2-valid) name permutation is
// re-labeled by the next round, transiently violating SP1.  The correct
// predicate is the steady-state orbit (Dftno::isLegitimate), on which the
// spec provably holds (dftno_test).  This regression pins the finding.
TEST(DftnoExhaustive, NaiveSpecPredicateIsNotClosed) {
  Dftno dftno(Graph::path(2));
  ModelChecker mc(dftno, [&dftno] {
    return dftno.substrateLegitimate() && dftno.satisfiesSpecNow();
  });
  const CheckResult res =
      mc.verifyFullSpace(1u << 12, Fairness::kWeaklyFair);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("closure"), std::string::npos) << res.failure;
}

TEST(DftnoReachable, OverlayLayerOnPath3FromLegitSubstrate) {
  // Verifies the paper's Theorem 3.2.3 contract on path-3: once L_TC
  // holds, the composed system converges to L_NO and stays there.
  // Seeds: every configuration of the substrate's legitimate orbit ×
  // a dense deterministic sample of orientation-layer states (the truly
  // exhaustive composed check runs on path-2 above).
  Dftno dftno(Graph::path(3));
  const int n = 3;
  std::vector<std::vector<std::uint64_t>> seeds;
  Dftc& sub = dftno.substrate();
  sub.resetClean();
  // Walk the substrate orbit, collecting substrate configurations.
  std::vector<std::vector<std::uint64_t>> orbitConfigs;
  {
    std::set<std::vector<std::uint64_t>> seen;
    while (seen.insert(sub.encodeConfiguration()).second) {
      orbitConfigs.push_back(sub.encodeConfiguration());
      const auto moves = sub.enabledMoves();
      ASSERT_EQ(moves.size(), 1u);
      sub.execute(moves.front().node, moves.front().action);
    }
  }
  std::vector<std::uint64_t> overlayCount(static_cast<std::size_t>(n));
  for (NodeId p = 0; p < n; ++p)
    overlayCount[static_cast<std::size_t>(p)] =
        dftno.localStateCount(p) / sub.localStateCount(p);
  Rng rng(0xC0FFEE);
  constexpr int kOverlaySamples = 3000;
  for (const auto& subCfg : orbitConfigs) {
    for (int s = 0; s < kOverlaySamples; ++s) {
      std::vector<std::uint64_t> cfg(static_cast<std::size_t>(n));
      for (NodeId p = 0; p < n; ++p) {
        const std::uint64_t ov = static_cast<std::uint64_t>(
            rng.below(static_cast<int>(overlayCount[static_cast<std::size_t>(p)])));
        cfg[static_cast<std::size_t>(p)] =
            subCfg[static_cast<std::size_t>(p)] +
            sub.localStateCount(p) * ov;
      }
      seeds.push_back(std::move(cfg));
    }
  }
  ModelChecker mc(dftno, [&dftno] { return dftno.isLegitimate(); });
  const CheckResult res =
      mc.verifyReachable(seeds, 8'000'000, Fairness::kWeaklyFair);
  EXPECT_TRUE(res.ok) << res.failure;
}

// Multi-word fairness masks: ring:12 has 12·6 = 72 (processor, action)
// pairs, beyond the old single-uint64_t 64-pair cap that used to reject
// fair-mode checks above ring:10.  Exhaustive weakly-fair verification
// of the 1-fault recovery cone (every single-node corruption of the
// clean round boundary): no illegitimate deadlock, no weakly-fair-
// feasible illegitimate cycle, closure holds.
TEST(DftcExhaustive, Ring12OneFaultConeWeaklyFair) {
  const Graph g = Graph::ring(12);
  ASSERT_GT(g.nodeCount() * Dftc::kActionCount, 64)
      << "test must exercise the multi-word mask path";
  Dftc clean(g);
  clean.resetClean();
  const std::vector<std::uint64_t> base = clean.encodeConfiguration();
  std::vector<std::vector<std::uint64_t>> seeds;
  for (NodeId p = 0; p < g.nodeCount(); ++p) {
    for (std::uint64_t code = 0; code < clean.localStateCount(p); ++code) {
      std::vector<std::uint64_t> seed = base;
      seed[static_cast<std::size_t>(p)] = code;
      seeds.push_back(std::move(seed));
    }
  }
  mc::ParallelChecker checker(
      [&g] { return std::make_unique<Dftc>(g); },
      [](Protocol& p) { return static_cast<Dftc&>(p).isLegitimate(); });
  mc::Options opt;
  opt.threads = 4;
  opt.maxStates = 2'000'000;
  opt.fairness = Fairness::kWeaklyFair;
  const mc::Result res = checker.checkReachable(seeds, opt);
  EXPECT_TRUE(res.ok) << res.failure;
  // The cone is far larger than anything a 64-pair mask ever covered.
  EXPECT_GT(res.statesExplored, 800'000u);
}

TEST(DftcMonteCarlo, LargerGraphsAllDaemons) {
  Rng topoRng(99);
  const std::vector<Graph> graphs = {
      Graph::ring(7),     Graph::complete(5),          Graph::grid(3, 3),
      Graph::figure311(), Graph::lollipop(4, 3),
      Graph::randomConnected(10, 0.3, topoRng),
  };
  for (const Graph& g : graphs) {
    for (DaemonKind kind : {DaemonKind::kCentral, DaemonKind::kDistributed,
                            DaemonKind::kSynchronous, DaemonKind::kRoundRobin}) {
      Dftc dftc(g);
      ModelChecker mc(dftc, [&dftc] { return dftc.isLegitimate(); });
      auto daemon = makeDaemon(kind);
      Rng rng(4242);
      const CheckResult res = mc.monteCarlo(*daemon, rng, 25, 500'000, 200);
      EXPECT_TRUE(res.ok) << "n=" << g.nodeCount() << " "
                          << daemon->name() << ": " << res.failure;
    }
  }
}

}  // namespace
}  // namespace ssno
