// Tests for the non-self-stabilizing baseline: it computes the same
// orientation as DFTNO when properly initialized, but any fault after
// completion is PERMANENT — the quantitative backdrop for §1.2.
#include "orientation/baseline.hpp"

#include <gtest/gtest.h>

#include "core/daemon.hpp"
#include "core/fault.hpp"
#include "core/graph.hpp"
#include "core/scheduler.hpp"
#include "orientation/dftno.hpp"
#include "sptree/dfs_tree.hpp"

namespace ssno {
namespace {

TEST(Baseline, ComputesCanonicalOrientationFromCleanInit) {
  for (const Graph& g :
       {Graph::ring(6), Graph::grid(3, 3), Graph::figure311()}) {
    InitBasedOrientation base(g);
    base.initializeAll();
    RoundRobinDaemon daemon;
    Rng rng(1);
    Simulator sim(base, daemon, rng);
    const RunStats stats = sim.runToQuiescence(1'000'000);
    EXPECT_TRUE(stats.terminal);
    EXPECT_TRUE(base.isCorrect());
    const auto pre = portOrderDfsPreorder(g);
    for (NodeId p = 0; p < g.nodeCount(); ++p)
      EXPECT_EQ(base.name(p), pre[static_cast<std::size_t>(p)]);
    EXPECT_TRUE(satisfiesSpec(base.orientation()));
  }
}

TEST(Baseline, MatchesDftnoNames) {
  const Graph g = Graph::grid(2, 4);
  InitBasedOrientation base(g);
  base.initializeAll();
  RoundRobinDaemon daemon;
  Rng rng(2);
  Simulator sim(base, daemon, rng);
  (void)sim.runToQuiescence(1'000'000);

  Dftno dftno(g);
  Rng rng2(3);
  dftno.randomize(rng2);
  RoundRobinDaemon d2;
  Simulator sim2(dftno, d2, rng2);
  ASSERT_TRUE(
      sim2.runUntil([&dftno] { return dftno.isLegitimate(); }, 20'000'000)
          .converged);
  EXPECT_EQ(base.orientation().name, dftno.orientation().name);
}

TEST(Baseline, FaultAfterCompletionIsPermanent) {
  const Graph g = Graph::ring(6);
  InitBasedOrientation base(g);
  base.initializeAll();
  RoundRobinDaemon daemon;
  Rng rng(4);
  Simulator sim(base, daemon, rng);
  (void)sim.runToQuiescence(1'000'000);
  ASSERT_TRUE(base.isCorrect());

  // Corrupt one completed processor's name: the done flag stays set, so
  // nothing is ever enabled again — the damage is permanent.
  auto raw = base.rawNode(2);
  raw[2] = (raw[2] + 1) % 6;  // eta
  base.setRawNode(2, raw);
  EXPECT_FALSE(base.isCorrect());
  const RunStats after = sim.runToQuiescence(1'000'000);
  EXPECT_TRUE(after.terminal);
  EXPECT_EQ(after.moves, 0);  // no action ever fires
  EXPECT_FALSE(base.isCorrect());
}

TEST(Baseline, ScrambleLeavesSystemBrokenButDftnoRecovers) {
  const Graph g = Graph::grid(3, 3);
  Rng rng(5);

  InitBasedOrientation base(g);
  base.initializeAll();
  {
    RoundRobinDaemon daemon;
    Simulator sim(base, daemon, rng);
    (void)sim.runToQuiescence(1'000'000);
  }
  FaultInjector inj(base);
  inj.corruptK(3, rng);
  {
    RoundRobinDaemon daemon;
    Simulator sim(base, daemon, rng);
    (void)sim.runToQuiescence(1'000'000);
  }
  EXPECT_FALSE(base.isCorrect()) << "baseline must not self-repair";

  Dftno dftno(g);
  FaultInjector inj2(dftno);
  RoundRobinDaemon daemon;
  Simulator sim(dftno, daemon, rng);
  ASSERT_TRUE(
      sim.runUntil([&dftno] { return dftno.isLegitimate(); }, 20'000'000)
          .converged);
  inj2.corruptK(3, rng);
  EXPECT_TRUE(
      sim.runUntil([&dftno] { return dftno.isLegitimate(); }, 20'000'000)
          .converged)
      << "the self-stabilizing protocol recovers from the same fault";
}

TEST(Baseline, ResetButtonRepairs) {
  const Graph g = Graph::path(5);
  InitBasedOrientation base(g);
  Rng rng(6);
  base.randomize(rng);
  base.initializeAll();  // the external intervention
  RoundRobinDaemon daemon;
  Simulator sim(base, daemon, rng);
  (void)sim.runToQuiescence(1'000'000);
  EXPECT_TRUE(base.isCorrect());
}

TEST(Baseline, CodecRoundTrips) {
  InitBasedOrientation base(Graph::figure311());
  Rng rng(7);
  for (int t = 0; t < 50; ++t) {
    base.randomize(rng);
    const auto codes = base.encodeConfiguration();
    InitBasedOrientation other(Graph::figure311());
    other.decodeConfiguration(codes);
    EXPECT_EQ(other.encodeConfiguration(), codes);
    EXPECT_EQ(other.rawConfiguration(), base.rawConfiguration());
  }
}

}  // namespace
}  // namespace ssno
