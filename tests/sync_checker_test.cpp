// Synchronous-successor expansion in both checkers: the sequential
// ModelChecker (incremental AND naive expansion) and the parallel
// explorer must agree with each other and with hand-computable
// synchronous dynamics, across thread counts, with verdicts and
// exploration statistics bit-identical.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/checker.hpp"
#include "core/enabled_cache.hpp"
#include "core/enabled_view.hpp"
#include "core/rng.hpp"
#include "dftc/dftc.hpp"
#include "mc/explorer.hpp"
#include "sptree/bfs_tree.hpp"
#include "toy_protocols.hpp"

namespace ssno {
namespace {

TEST(SimultaneousSelection, EnumeratesCartesianProduct) {
  // Two nodes with masks {0,2} and {1}: selections in lex order.
  NodeMasks masks;
  masks.emplace_back(0, (std::uint64_t{1} << 0) | (std::uint64_t{1} << 2));
  masks.emplace_back(3, std::uint64_t{1} << 1);
  std::vector<std::vector<Move>> seen;
  std::vector<Move> scratch;
  forEachSimultaneousSelection(masks, scratch,
                               [&](std::span<const Move> set) {
                                 seen.emplace_back(set.begin(), set.end());
                               });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::vector<Move>{{0, 0}, {3, 1}}));
  EXPECT_EQ(seen[1], (std::vector<Move>{{0, 2}, {3, 1}}));
  // Empty snapshot: no selections.
  NodeMasks empty;
  int calls = 0;
  forEachSimultaneousSelection(empty, scratch,
                               [&](std::span<const Move>) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(SyncChecker, ZeroProtocolConvergesSynchronously) {
  // Under the synchronous daemon every non-zero node zeroes at once:
  // every configuration reaches all-zero in ONE step; the space is
  // closed, deadlock-free and acyclic.
  const Graph g = Graph::path(3);
  ZeroProtocol proto(g, 3);
  ModelChecker checker(proto, [&] { return proto.allZero(); });
  checker.setSynchronousSteps(true);
  const CheckResult res = checker.verifyFullSpace(1u << 20);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_EQ(res.configsExplored, 27u);
}

TEST(SyncChecker, OscillatorCycleIsFoundSynchronously) {
  const Graph g = Graph::path(2);
  OscillateProtocol proto(g);
  ModelChecker checker(proto, [&] { return proto.allZero(); });
  checker.setSynchronousSteps(true);
  const CheckResult res = checker.verifyFullSpace(1u << 20);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("cycle"), std::string::npos) << res.failure;
}

TEST(SyncChecker, DeadlockIsFoundSynchronously) {
  const Graph g = Graph::path(2);
  StuckProtocol proto(g);
  ModelChecker checker(proto, [&] { return proto.allZero(); });
  checker.setSynchronousSteps(true);
  const CheckResult res = checker.verifyFullSpace(1u << 20);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("deadlock"), std::string::npos) << res.failure;
}

TEST(SyncChecker, FairnessModesAreRejected) {
  const Graph g = Graph::path(2);
  ZeroProtocol proto(g, 2);
  ModelChecker checker(proto, [&] { return proto.allZero(); });
  checker.setSynchronousSteps(true);
  const CheckResult res =
      checker.verifyFullSpace(1u << 20, Fairness::kWeaklyFair);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("synchronous"), std::string::npos);
}

/// Sequential naive vs sequential incremental vs parallel (1/2/4
/// threads) on a real protocol: verdict, failure text, and state
/// counts must agree; the parallel Result must be bit-identical across
/// thread counts.
TEST(SyncChecker, SequentialAndParallelAgreeOnBfsTree) {
  const Graph g = Graph::path(3);
  auto factory = [&]() -> std::unique_ptr<Protocol> {
    return std::make_unique<BfsTree>(g);
  };
  auto legit = [](Protocol& p) {
    return static_cast<BfsTree&>(p).isLegitimate();
  };

  BfsTree seq(g);
  ModelChecker checker(seq, [&] { return seq.isLegitimate(); });
  checker.setSynchronousSteps(true);
  const CheckResult inc = checker.verifyFullSpace(1u << 22);

  BfsTree seqNaive(g);
  ModelChecker checkerNaive(seqNaive, [&] { return seqNaive.isLegitimate(); });
  checkerNaive.setSynchronousSteps(true);
  checkerNaive.setNaiveExpansion(true);
  const CheckResult naive = checkerNaive.verifyFullSpace(1u << 22);

  EXPECT_EQ(inc.ok, naive.ok);
  EXPECT_EQ(inc.failure, naive.failure);
  EXPECT_EQ(inc.configsExplored, naive.configsExplored);

  mc::Result first;
  for (int threads : {1, 2, 4}) {
    mc::Options opt;
    opt.threads = threads;
    opt.synchronousSteps = true;
    mc::ParallelChecker parallel(factory, legit);
    const mc::Result res = parallel.checkFullSpace(opt);
    EXPECT_EQ(res.ok, inc.ok) << "threads=" << threads;
    if (threads == 1) {
      first = res;
    } else {
      EXPECT_EQ(res.ok, first.ok);
      EXPECT_EQ(res.failure, first.failure);
      EXPECT_EQ(res.statesExplored, first.statesExplored);
      EXPECT_EQ(res.transitions, first.transitions);
      EXPECT_EQ(res.trace, first.trace);
    }
  }
}

/// DFTC on a tiny ring under synchronous steps: whatever the verdict,
/// all engines must agree bit for bit (the synchronous daemon is not
/// part of the paper's assumptions, so the verdict itself is a
/// discovery, not an expectation).
TEST(SyncChecker, SequentialAndParallelAgreeOnDftcRing) {
  const Graph g = Graph::ring(3);
  auto factory = [&]() -> std::unique_ptr<Protocol> {
    return std::make_unique<Dftc>(g);
  };
  auto legit = [](Protocol& p) {
    return static_cast<Dftc&>(p).isLegitimate();
  };

  Dftc seq(g);
  ModelChecker checker(seq, [&] { return seq.isLegitimate(); });
  checker.setSynchronousSteps(true);
  const CheckResult inc = checker.verifyFullSpace(1u << 22);

  Dftc seqNaive(g);
  ModelChecker checkerNaive(seqNaive, [&] { return seqNaive.isLegitimate(); });
  checkerNaive.setSynchronousSteps(true);
  checkerNaive.setNaiveExpansion(true);
  const CheckResult naive = checkerNaive.verifyFullSpace(1u << 22);
  EXPECT_EQ(inc.ok, naive.ok);
  EXPECT_EQ(inc.failure, naive.failure);
  EXPECT_EQ(inc.configsExplored, naive.configsExplored);

  for (int threads : {1, 2}) {
    mc::Options opt;
    opt.threads = threads;
    opt.synchronousSteps = true;
    mc::ParallelChecker parallel(factory, legit);
    const mc::Result res = parallel.checkFullSpace(opt);
    EXPECT_EQ(res.ok, inc.ok) << "threads=" << threads;
  }
}

/// Reachable-mode synchronous expansion: from a single seed the
/// synchronous ZeroProtocol reaches exactly {seed, all-zero}.
TEST(SyncChecker, ReachableSynchronousFromSeed) {
  const Graph g = Graph::path(3);
  ZeroProtocol proto(g, 3);
  ModelChecker checker(proto, [&] { return proto.allZero(); });
  checker.setSynchronousSteps(true);
  const std::vector<std::vector<std::uint64_t>> seeds = {{2, 0, 1}};
  const CheckResult res = checker.verifyReachable(seeds, 1u << 20);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_EQ(res.configsExplored, 2u);  // the seed and all-zero

  auto factory = [&]() -> std::unique_ptr<Protocol> {
    return std::make_unique<ZeroProtocol>(g, 3);
  };
  auto legit = [](Protocol& p) {
    return static_cast<ZeroProtocol&>(p).allZero();
  };
  mc::Options opt;
  opt.threads = 2;
  opt.synchronousSteps = true;
  mc::ParallelChecker parallel(factory, legit);
  const mc::Result mcRes = parallel.checkReachable(seeds, opt);
  EXPECT_TRUE(mcRes.ok) << mcRes.failure;
  EXPECT_EQ(mcRes.statesExplored, 2u);
}

}  // namespace
}  // namespace ssno
