// Behavioral tests for DFTNO (Algorithm 3.1.1): naming matches the DFS
// preorder (Figure 3.1.1), edge labels form the chordal sense of
// direction, names are stable across subsequent token rounds, legitimacy
// implies the specification SP_NO.
#include "orientation/dftno.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/daemon.hpp"
#include "core/graph.hpp"
#include "core/scheduler.hpp"
#include "sptree/dfs_tree.hpp"

namespace ssno {
namespace {

/// Stabilizes the protocol under a weakly fair daemon.
void stabilize(Dftno& dftno, std::uint64_t seed = 1) {
  RoundRobinDaemon daemon;
  Rng rng(seed);
  Simulator sim(dftno, daemon, rng);
  const RunStats stats =
      sim.runUntil([&dftno] { return dftno.isLegitimate(); }, 5'000'000);
  ASSERT_TRUE(stats.converged);
}

TEST(Dftno, Figure311Names) {
  // Figure 3.1.1: r=0, b=1, d=2, c=3, a=4.
  Dftno dftno(Graph::figure311());
  Rng rng(2);
  dftno.randomize(rng);
  stabilize(dftno);
  EXPECT_EQ(dftno.name(0), 0);  // r
  EXPECT_EQ(dftno.name(2), 1);  // b
  EXPECT_EQ(dftno.name(4), 2);  // d
  EXPECT_EQ(dftno.name(3), 3);  // c
  EXPECT_EQ(dftno.name(1), 4);  // a
}

TEST(Dftno, NamesAreDfsPreorder) {
  Rng topo(3);
  for (auto g : {Graph::ring(7), Graph::grid(3, 3), Graph::complete(5),
                 Graph::randomConnected(10, 0.3, topo)}) {
    Dftno dftno(g);
    Rng rng(4);
    dftno.randomize(rng);
    stabilize(dftno);
    const auto pre = portOrderDfsPreorder(g);
    for (NodeId p = 0; p < g.nodeCount(); ++p)
      EXPECT_EQ(dftno.name(p), pre[static_cast<std::size_t>(p)])
          << "node " << p;
  }
}

TEST(Dftno, LegitimacyImpliesSpec) {
  // SP1 ∧ SP2 are theorems on the steady-state orbit: walk the whole
  // orbit and assert the spec at every configuration.
  Dftno dftno(Graph::figure311());
  Rng rng(5);
  dftno.randomize(rng);
  stabilize(dftno);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(dftno.isLegitimate());
    EXPECT_TRUE(dftno.satisfiesSpecNow()) << "orbit position " << i;
    const Orientation o = dftno.orientation();
    EXPECT_TRUE(isLocallyOriented(o));
    EXPECT_TRUE(hasEdgeSymmetry(o));
    const auto moves = dftno.enabledMoves();
    ASSERT_FALSE(moves.empty());
    dftno.execute(moves.front().node, moves.front().action);
  }
}

TEST(Dftno, NamesStableAcrossRounds) {
  Dftno dftno(Graph::grid(2, 3));
  Rng rng(6);
  dftno.randomize(rng);
  stabilize(dftno);
  const Orientation before = dftno.orientation();
  // Run several more full rounds.
  RoundRobinDaemon daemon;
  Simulator sim(dftno, daemon, rng);
  for (int i = 0; i < 500; ++i) (void)sim.stepOnce();
  const Orientation after = dftno.orientation();
  EXPECT_EQ(before.name, after.name);
  EXPECT_EQ(before.label, after.label);
}

TEST(Dftno, EdgeLabelsAreChordalDistances) {
  Dftno dftno(Graph::figure221());
  Rng rng(7);
  dftno.randomize(rng);
  stabilize(dftno);
  const Graph& g = dftno.graph();
  for (NodeId p = 0; p < g.nodeCount(); ++p)
    for (Port l = 0; l < g.degree(p); ++l)
      EXPECT_EQ(dftno.edgeLabel(p, l),
                chordalDistance(dftno.name(p),
                                dftno.name(g.neighborAt(p, l)), 5));
}

TEST(Dftno, MaxReachesNodeCountAtRootBetweenRounds) {
  // "At the end of the round, the [max] value ... is clearly the total
  // number of nodes in the system" (§3.1) — i.e. n−1 with 0-based names.
  Dftno dftno(Graph::figure311());
  Rng rng(8);
  dftno.randomize(rng);
  stabilize(dftno);
  bool sawBoundary = false;
  for (int i = 0; i < 400; ++i) {
    if (dftno.substrate().isIdle(0) &&
        dftno.substrate().enabled(0, Dftc::kStart)) {
      EXPECT_EQ(dftno.maxSeen(0), dftno.graph().nodeCount() - 1);
      sawBoundary = true;
    }
    const auto moves = dftno.enabledMoves();
    dftno.execute(moves.front().node, moves.front().action);
  }
  EXPECT_TRUE(sawBoundary);
}

TEST(Dftno, ConvergesWithPaperFaithfulGuardUnderPracticalDaemons) {
  // The paper guard's weak-fairness gap (see dftc_modelcheck_test) is an
  // adversarial corner; practical randomized daemons converge fine.
  Dftno dftno(Graph::ring(6), EdgeLabelGuard::kPaperFaithful);
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    dftno.randomize(rng);
    DistributedDaemon daemon;
    Simulator sim(dftno, daemon, rng);
    const RunStats stats =
        sim.runUntil([&dftno] { return dftno.isLegitimate(); }, 5'000'000);
    EXPECT_TRUE(stats.converged) << "trial " << trial;
  }
}

TEST(Dftno, OrientationBitsMatchFormula) {
  Dftno dftno(Graph::star(9));  // N = 9, hub degree 8
  // Hub: (2 + 8)·log2(9); leaf: (2 + 1)·log2(9).
  EXPECT_NEAR(dftno.orientationBits(0), 10 * std::log2(9.0), 1e-9);
  EXPECT_NEAR(dftno.orientationBits(1), 3 * std::log2(9.0), 1e-9);
}

TEST(Dftno, CodecRoundTripsOnRandomStates) {
  Dftno dftno(Graph::figure311());
  Rng rng(10);
  for (int trial = 0; trial < 100; ++trial) {
    dftno.randomize(rng);
    const auto codes = dftno.encodeConfiguration();
    Dftno other(Graph::figure311());
    other.decodeConfiguration(codes);
    EXPECT_EQ(other.encodeConfiguration(), codes);
  }
}

}  // namespace
}  // namespace ssno
