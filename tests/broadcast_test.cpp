// Tests for oriented vs unoriented traversal/broadcast — the message-
// complexity gap the paper's §1.4 cites (Santoro [21]): with a sense of
// direction the token walks 2(n−1) edges; without it, 2m.
#include "apps/broadcast.hpp"

#include <gtest/gtest.h>

#include "core/graph.hpp"
#include "orientation/chordal.hpp"
#include "sptree/dfs_tree.hpp"

namespace ssno {
namespace {

Orientation canonicalOrientation(const Graph& g) {
  return inducedChordalOrientation(g, portOrderDfsPreorder(g),
                                   g.nodeCount());
}

TEST(OrientedTraversal, Uses2NMinus2Messages) {
  Rng rng(1);
  for (const Graph& g :
       {Graph::ring(8), Graph::complete(6), Graph::grid(3, 4),
        Graph::randomConnected(15, 0.4, rng)}) {
    const Orientation o = canonicalOrientation(g);
    const TraversalResult res = traverseWithOrientation(o, g.root());
    EXPECT_TRUE(res.coveredAll(g));
    EXPECT_EQ(res.messages, 2 * (g.nodeCount() - 1));
  }
}

TEST(UnorientedTraversal, Uses2MMessages) {
  Rng rng(2);
  for (const Graph& g :
       {Graph::ring(8), Graph::complete(6), Graph::grid(3, 4),
        Graph::randomConnected(15, 0.4, rng)}) {
    const TraversalResult res = traverseWithoutOrientation(g, g.root());
    EXPECT_TRUE(res.coveredAll(g));
    EXPECT_EQ(res.messages, 2 * g.edgeCount());
  }
}

TEST(Traversal, GapGrowsWithDensity) {
  // On trees the two coincide (m = n−1); on the complete graph the
  // unoriented cost is Θ(n²) while the oriented one stays 2(n−1).
  const Graph tree = Graph::kAryTree(15, 2);
  EXPECT_EQ(traverseWithOrientation(canonicalOrientation(tree), 0).messages,
            traverseWithoutOrientation(tree, 0).messages);
  const Graph dense = Graph::complete(12);
  const int with = traverseWithOrientation(canonicalOrientation(dense), 0)
                       .messages;
  const int without = traverseWithoutOrientation(dense, 0).messages;
  EXPECT_EQ(with, 22);
  EXPECT_EQ(without, 132);
}

TEST(Traversal, VisitOrderIsDfsPreorder) {
  const Graph g = Graph::figure311();
  const Orientation o = canonicalOrientation(g);
  const TraversalResult res = traverseWithOrientation(o, 0);
  EXPECT_EQ(res.visitOrder, (std::vector<NodeId>{0, 2, 4, 3, 1}));
}

TEST(Traversal, WorksFromNonRootSource) {
  const Graph g = Graph::grid(3, 3);
  const Orientation o = canonicalOrientation(g);
  const TraversalResult res = traverseWithOrientation(o, 4);
  EXPECT_TRUE(res.coveredAll(g));
  EXPECT_EQ(res.visitOrder.front(), 4);
}

}  // namespace
}  // namespace ssno
