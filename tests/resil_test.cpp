// Adversarial resilience (src/resil): the fault-plan grammar must
// round-trip through its canonical rendering with item-numbered parse
// errors, the searching daemon must be deterministic — same seed, same
// schedule, bit-identical rerun AND replay — while staying weakly fair
// (DFTNO still converges under it), and a campaign's worst trial can
// never undercut its own average.
#include "resil/campaign.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/daemon.hpp"
#include "core/graph.hpp"
#include "core/rng.hpp"
#include "orientation/dftno.hpp"
#include "resil/fault_plan.hpp"
#include "resil/search_daemon.hpp"

namespace ssno::resil {
namespace {

// ---------------------------------------------------------------- plans

TEST(FaultPlan, GoldenCanonicalTextPinsTheGrammar) {
  // Whitespace-tolerant in, canonical (whitespace-free) out.  This text
  // is the wire format embedded in scenario files and canon=2 keys — if
  // it changes, kCacheSalt must be bumped alongside.
  const FaultPlan p =
      FaultPlan::parse("burst:k=8@step=0; crash:p=3@round=5 ;scramble@step=100");
  EXPECT_EQ(p.render(), "burst:k=8@step=0;crash:p=3@round=5;scramble@step=100");
  ASSERT_EQ(p.events().size(), 3u);
  EXPECT_EQ(p.events()[0].kind, FaultEvent::Kind::kBurst);
  EXPECT_EQ(p.events()[0].k, 8);
  EXPECT_EQ(p.events()[0].trigger, FaultEvent::Trigger::kStep);
  EXPECT_EQ(p.events()[0].at, 0);
  EXPECT_EQ(p.events()[1].kind, FaultEvent::Kind::kCrash);
  EXPECT_EQ(p.events()[1].p, 3);
  EXPECT_EQ(p.events()[1].trigger, FaultEvent::Trigger::kRound);
  EXPECT_EQ(p.events()[1].at, 5);
  EXPECT_EQ(p.events()[2].kind, FaultEvent::Kind::kScramble);
}

TEST(FaultPlan, RepeatExpandsWithTheDefaultPeriod) {
  // Default period = largest trigger + 1 = 3: copies land at 2, 5, 8.
  const FaultPlan p = FaultPlan::parse("scramble@step=2;repeat:3");
  EXPECT_EQ(p.render(), "scramble@step=2;scramble@step=5;scramble@step=8");
}

TEST(FaultPlan, RepeatHonorsAnExplicitPeriod) {
  const FaultPlan p = FaultPlan::parse("burst:k=1@round=1;repeat:2@every=10");
  EXPECT_EQ(p.render(), "burst:k=1@round=1;burst:k=1@round=11");
}

TEST(FaultPlan, ParseRenderRoundTripsExactly) {
  for (const char* text :
       {"", "scramble@step=0", "burst:k=2@round=3;crash:p=0@step=9",
        "crash:p=1@round=2;scramble@round=4;repeat:2",
        "burst:k=8@step=0;crash:p=3@round=5;scramble@step=100"}) {
    const FaultPlan p = FaultPlan::parse(text);
    EXPECT_EQ(FaultPlan::parse(p.render()), p) << text;
  }
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_EQ(FaultPlan::parse("").render(), "");
}

TEST(FaultPlan, ParseErrorsCarryTheItemNumber) {
  const struct {
    const char* text;
    const char* fragment;
  } kCases[] = {
      {"scramble@step=1;bogus@step=2", "fault plan item 2"},
      {"burst:k=nope@step=0", "fault plan item 1"},
      {"crash:p=2", "fault plan item 1"},          // missing trigger
      {"scramble@tick=3", "fault plan item 1"},    // unknown trigger
      {"burst:k=-1@step=0", "fault plan item 1"},  // negative count
      {"repeat:2", "fault plan item 1"},           // nothing to repeat
      {"repeat:2;scramble@step=1", "last item"},   // repeat not last
      {"scramble@step=1;repeat:0", "fault plan item 2"},
  };
  for (const auto& c : kCases) {
    try {
      (void)FaultPlan::parse(c.text);
      FAIL() << "expected std::invalid_argument for: " << c.text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(c.fragment), std::string::npos)
          << c.text << " -> " << e.what();
    }
  }
}

TEST(FaultPlan, ApplyEventRejectsOutOfRangeTargets) {
  Dftno dftno(Graph::ring(4));
  Rng rng(1);
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kCrash;
  crash.p = 9;
  EXPECT_THROW(applyEvent(crash, dftno, rng), std::invalid_argument);
  FaultEvent burst;
  burst.kind = FaultEvent::Kind::kBurst;
  burst.k = 10;
  EXPECT_THROW(applyEvent(burst, dftno, rng), std::invalid_argument);
}

// --------------------------------------------------- search and replay

EpisodeResult searchEpisode(int n, std::uint64_t seed, int lookahead,
                            const std::string& plan = "") {
  Dftno dftno(Graph::ring(n));
  SearchingDaemon daemon(dftno, lookahead);
  Rng rng(seed);
  EpisodeOptions eo;
  eo.budget = 500'000;
  eo.plan = FaultPlan::parse(plan);
  return runEpisode(dftno, daemon, rng, eo,
                    [&dftno] { return dftno.isLegitimate(); });
}

TEST(SearchingDaemon, StaysWeaklyFairSoDftnoStillConverges) {
  // The whole point of the fairness bound: a pure greedy adversary
  // could starve DFTNO forever; the bounded one may only delay it.
  for (const int lookahead : {0, 2}) {
    const EpisodeResult r = searchEpisode(8, 11, lookahead);
    EXPECT_TRUE(r.converged) << "lookahead " << lookahead;
    EXPECT_GT(r.moves, 0);
  }
}

TEST(SearchingDaemon, SameSeedReproducesTheScheduleBitIdentically) {
  for (const int lookahead : {0, 2}) {
    const EpisodeResult a = searchEpisode(8, 42, lookahead);
    const EpisodeResult b = searchEpisode(8, 42, lookahead);
    EXPECT_EQ(a.schedule, b.schedule) << "lookahead " << lookahead;
    EXPECT_EQ(a.moves, b.moves);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.converged, b.converged);
    // ...and a different seed scrambles differently.
    const EpisodeResult c = searchEpisode(8, 43, lookahead);
    EXPECT_NE(a.schedule, c.schedule) << "lookahead " << lookahead;
  }
}

TEST(ReplayDaemon, ReplaysTheRecordedScheduleToTheSameOutcome) {
  const std::string plan = "burst:k=2@round=2";
  const EpisodeResult search = searchEpisode(8, 7, /*lookahead=*/0, plan);
  ASSERT_TRUE(search.converged);
  ASSERT_GT(search.injections, 0);

  Dftno dftno(Graph::ring(8));
  ReplayDaemon daemon(search.schedule);
  Rng rng(7);  // same seed: scramble + injections draw identical states
  EpisodeOptions eo;
  eo.budget = 500'000;
  eo.plan = FaultPlan::parse(plan);
  const EpisodeResult replay = runEpisode(
      dftno, daemon, rng, eo, [&dftno] { return dftno.isLegitimate(); });
  EXPECT_EQ(replay.schedule, search.schedule);
  EXPECT_EQ(replay.moves, search.moves);
  EXPECT_EQ(replay.rounds, search.rounds);
  EXPECT_EQ(replay.converged, search.converged);
  EXPECT_EQ(daemon.served(), search.schedule.size());
}

TEST(ReplayDaemon, DivergenceThrowsInsteadOfSilentlyImprovising) {
  const EpisodeResult search = searchEpisode(8, 9, /*lookahead=*/0);
  ASSERT_FALSE(search.schedule.empty());

  // Same schedule, WRONG seed: the scrambled start differs, so the
  // recorded moves stop matching the enabled set at some step.
  Dftno dftno(Graph::ring(8));
  ReplayDaemon daemon(search.schedule);
  Rng rng(10);
  EpisodeOptions eo;
  eo.budget = 500'000;
  EXPECT_THROW(runEpisode(dftno, daemon, rng, eo,
                          [&dftno] { return dftno.isLegitimate(); }),
               std::runtime_error);
}

TEST(SearchingDaemon, FindsCostlierSchedulesThanRandomOnAverage) {
  // The bench gates the 2x adversary floor; here we only pin the sign:
  // a worst-case SEARCH must not lose to blind random scheduling.
  double randomTotal = 0;
  const int kTrials = 5;
  for (int t = 0; t < kTrials; ++t) {
    Dftno dftno(Graph::ring(8));
    CentralDaemon daemon;
    Rng rng(100 + static_cast<std::uint64_t>(t));
    EpisodeOptions eo;
    eo.budget = 500'000;
    const EpisodeResult r = runEpisode(
        dftno, daemon, rng, eo, [&dftno] { return dftno.isLegitimate(); });
    EXPECT_TRUE(r.converged);
    randomTotal += static_cast<double>(r.moves);
  }
  const EpisodeResult search = searchEpisode(8, 100, /*lookahead=*/0);
  EXPECT_TRUE(search.converged);
  EXPECT_GE(static_cast<double>(search.moves), randomTotal / kTrials);
}

// ------------------------------------------------------------ campaigns

TEST(Campaign, WorstTrialNeverUndercutsTheAverage) {
  CampaignRunner runner(
      [] { return std::make_unique<Dftno>(Graph::ring(8)); },
      [](Protocol& p) { return std::make_unique<SearchingDaemon>(p); },
      [](Protocol& p) {
        auto& dftno = static_cast<Dftno&>(p);
        return [&dftno] { return dftno.isLegitimate(); };
      });
  CampaignOptions opt;
  opt.trials = 4;
  opt.seed = 21;
  opt.budget = 500'000;
  opt.plan = FaultPlan::parse("burst:k=2@round=2");
  const CampaignReport report = runner.run(opt);
  EXPECT_EQ(report.trials, 4);
  EXPECT_EQ(report.converged, 4);
  EXPECT_EQ(report.verdict, "converged");
  EXPECT_GE(report.worstTrial, 0);
  EXPECT_GE(static_cast<double>(report.worstMoves), report.moves.mean);
  EXPECT_EQ(static_cast<double>(report.worstMoves), report.moves.max);
  // The offending schedule ships in replayable text form.
  EXPECT_EQ(parseSchedule(report.worstScheduleText), report.worstSchedule);
  EXPECT_EQ(report.worstSchedule.size(),
            static_cast<std::size_t>(report.worstMoves));
}

TEST(Campaign, TrialSeedsAreDistinctAndNonZero) {
  std::uint64_t prev = 0;
  for (int t = 0; t < 16; ++t) {
    const std::uint64_t s = campaignTrialSeed(77, t);
    EXPECT_NE(s, 0u);
    EXPECT_NE(s, prev);
    EXPECT_EQ(s, campaignTrialSeed(77, t));  // stable
    prev = s;
  }
}

TEST(Campaign, ScheduleSerializationRoundTripsAndRejectsGarbage) {
  const std::vector<Move> schedule = {{0, 3}, {5, 1}, {2, 0}};
  const std::string text = serializeSchedule(schedule);
  EXPECT_EQ(text, "0:3,5:1,2:0");
  EXPECT_EQ(parseSchedule(text), schedule);
  EXPECT_TRUE(parseSchedule("").empty());
  EXPECT_EQ(serializeSchedule({}), "");
  for (const char* bad : {"1", "1:", ":2", "1:2,x", "1:2,,3:4"}) {
    EXPECT_THROW((void)parseSchedule(bad), std::invalid_argument) << bad;
  }
}

}  // namespace
}  // namespace ssno::resil
