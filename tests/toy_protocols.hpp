// Small synthetic protocols used to test the framework itself (daemons,
// simulator, fault injection, model checker) independently of the real
// algorithms.
#ifndef SSNO_TESTS_TOY_PROTOCOLS_HPP
#define SSNO_TESTS_TOY_PROTOCOLS_HPP

#include <sstream>
#include <string>
#include <vector>

#include "core/protocol.hpp"

namespace ssno {

/// Trivially self-stabilizing: every node zeroes its value.
/// Legitimate = all values zero; silent there.
class ZeroProtocol final : public Protocol {
 public:
  ZeroProtocol(Graph g, int domain)
      : Protocol(std::move(g)), domain_(domain) {
    v_.assign(static_cast<std::size_t>(graph().nodeCount()), domain_ - 1);
  }

  [[nodiscard]] int actionCount() const override { return 1; }
  [[nodiscard]] std::string actionName(int) const override { return "Zero"; }
  [[nodiscard]] bool enabled(NodeId p, int a) const override {
    return a == 0 && v_[static_cast<std::size_t>(p)] != 0;
  }
  void doExecute(NodeId p, int) override { v_[static_cast<std::size_t>(p)] = 0; }
  void doRandomizeNode(NodeId p, Rng& rng) override {
    v_[static_cast<std::size_t>(p)] = rng.below(domain_);
  }
  [[nodiscard]] std::uint64_t localStateCount(NodeId) const override {
    return static_cast<std::uint64_t>(domain_);
  }
  [[nodiscard]] std::uint64_t encodeNode(NodeId p) const override {
    return static_cast<std::uint64_t>(v_[static_cast<std::size_t>(p)]);
  }
  void doDecodeNode(NodeId p, std::uint64_t code) override {
    v_[static_cast<std::size_t>(p)] = static_cast<int>(code);
  }
  [[nodiscard]] std::vector<int> rawNode(NodeId p) const override {
    return {v_[static_cast<std::size_t>(p)]};
  }
  void doSetRawNode(NodeId p, std::span<const int> values) override {
    v_[static_cast<std::size_t>(p)] = values[0];
  }
  [[nodiscard]] std::string dumpNode(NodeId p) const override {
    std::ostringstream out;
    out << "v=" << v_[static_cast<std::size_t>(p)];
    return out.str();
  }

  [[nodiscard]] bool allZero() const {
    for (int v : v_)
      if (v != 0) return false;
    return true;
  }
  [[nodiscard]] int value(NodeId p) const {
    return v_[static_cast<std::size_t>(p)];
  }
  void setValue(NodeId p, int v) {
    v_[static_cast<std::size_t>(p)] = v;
    dirtyNeighborhood(p);  // honor the dirtying contract for direct writes
  }

 private:
  int domain_;
  std::vector<int> v_;
};

/// Broken on purpose: a node with v=1 flips forever between 1 and 2 —
/// a cycle entirely inside the illegitimate region (legit = all zero).
class OscillateProtocol final : public Protocol {
 public:
  explicit OscillateProtocol(Graph g) : Protocol(std::move(g)) {
    v_.assign(static_cast<std::size_t>(graph().nodeCount()), 1);
  }
  [[nodiscard]] int actionCount() const override { return 1; }
  [[nodiscard]] std::string actionName(int) const override { return "Flip"; }
  [[nodiscard]] bool enabled(NodeId p, int a) const override {
    return a == 0 && v_[static_cast<std::size_t>(p)] != 0;
  }
  void doExecute(NodeId p, int) override {
    auto& v = v_[static_cast<std::size_t>(p)];
    v = (v == 1) ? 2 : 1;
  }
  void doRandomizeNode(NodeId p, Rng& rng) override {
    v_[static_cast<std::size_t>(p)] = rng.below(3);
  }
  [[nodiscard]] std::uint64_t localStateCount(NodeId) const override {
    return 3;
  }
  [[nodiscard]] std::uint64_t encodeNode(NodeId p) const override {
    return static_cast<std::uint64_t>(v_[static_cast<std::size_t>(p)]);
  }
  void doDecodeNode(NodeId p, std::uint64_t code) override {
    v_[static_cast<std::size_t>(p)] = static_cast<int>(code);
  }
  [[nodiscard]] std::vector<int> rawNode(NodeId p) const override {
    return {v_[static_cast<std::size_t>(p)]};
  }
  void doSetRawNode(NodeId p, std::span<const int> values) override {
    v_[static_cast<std::size_t>(p)] = values[0];
  }
  [[nodiscard]] std::string dumpNode(NodeId p) const override {
    return "v=" + std::to_string(v_[static_cast<std::size_t>(p)]);
  }
  [[nodiscard]] bool allZero() const {
    for (int v : v_)
      if (v != 0) return false;
    return true;
  }

 private:
  std::vector<int> v_;
};

/// Broken on purpose: nothing is ever enabled, so any non-zero value is
/// an illegitimate terminal configuration (a deadlock).
class StuckProtocol final : public Protocol {
 public:
  explicit StuckProtocol(Graph g) : Protocol(std::move(g)) {
    v_.assign(static_cast<std::size_t>(graph().nodeCount()), 0);
  }
  [[nodiscard]] int actionCount() const override { return 1; }
  [[nodiscard]] std::string actionName(int) const override { return "Never"; }
  [[nodiscard]] bool enabled(NodeId, int) const override { return false; }
  void doExecute(NodeId, int) override {}
  void doRandomizeNode(NodeId p, Rng& rng) override {
    v_[static_cast<std::size_t>(p)] = rng.below(2);
  }
  [[nodiscard]] std::uint64_t localStateCount(NodeId) const override {
    return 2;
  }
  [[nodiscard]] std::uint64_t encodeNode(NodeId p) const override {
    return static_cast<std::uint64_t>(v_[static_cast<std::size_t>(p)]);
  }
  void doDecodeNode(NodeId p, std::uint64_t code) override {
    v_[static_cast<std::size_t>(p)] = static_cast<int>(code);
  }
  [[nodiscard]] std::vector<int> rawNode(NodeId p) const override {
    return {v_[static_cast<std::size_t>(p)]};
  }
  void doSetRawNode(NodeId p, std::span<const int> values) override {
    v_[static_cast<std::size_t>(p)] = values[0];
  }
  [[nodiscard]] std::string dumpNode(NodeId p) const override {
    return "v=" + std::to_string(v_[static_cast<std::size_t>(p)]);
  }
  [[nodiscard]] bool allZero() const {
    for (int v : v_)
      if (v != 0) return false;
    return true;
  }

 private:
  std::vector<int> v_;
};

}  // namespace ssno

#endif  // SSNO_TESTS_TOY_PROTOCOLS_HPP
