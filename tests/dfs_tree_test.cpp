// Tests for DFS spanning trees: the centralized port-order reference,
// preorder numbering, and extraction from the live token circulation.
#include "sptree/dfs_tree.hpp"

#include <gtest/gtest.h>

#include "core/graph.hpp"
#include "core/graph_algo.hpp"

namespace ssno {
namespace {

TEST(PortOrderDfs, TreeOnFigure311) {
  const Graph g = Graph::figure311();
  const auto parent = portOrderDfsTree(g);
  EXPECT_TRUE(isSpanningTree(g, parent));
  // DFS from r(0) in port order: b(2) under r, d(4) under b, c(3) under
  // d, a(1) under r.
  EXPECT_EQ(parent[2], 0);
  EXPECT_EQ(parent[4], 2);
  EXPECT_EQ(parent[3], 4);
  EXPECT_EQ(parent[1], 0);
}

TEST(PortOrderDfs, PreorderOnFigure311) {
  const auto pre = portOrderDfsPreorder(Graph::figure311());
  EXPECT_EQ(pre, (std::vector<int>{0, 4, 1, 3, 2}));
}

TEST(PortOrderDfs, PreorderIsPermutation) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = Graph::randomConnected(12, 0.3, rng);
    const auto pre = portOrderDfsPreorder(g);
    std::vector<bool> seen(12, false);
    for (int v : pre) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, 12);
      EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
      seen[static_cast<std::size_t>(v)] = true;
    }
    EXPECT_EQ(pre[static_cast<std::size_t>(g.root())], 0);
  }
}

TEST(PortOrderDfs, TreeEdgesAreGraphEdges) {
  Rng rng(12);
  const Graph g = Graph::randomConnected(15, 0.2, rng);
  const auto parent = portOrderDfsTree(g);
  EXPECT_TRUE(isSpanningTree(g, parent));
}

TEST(DfsTreeFromCirculation, MatchesCentralizedReference) {
  Rng rng(13);
  for (auto g : {Graph::ring(6), Graph::figure311(), Graph::grid(2, 4),
                 Graph::complete(4),
                 Graph::randomConnected(10, 0.25, rng)}) {
    Dftc dftc(g);
    Rng scramble(17);
    dftc.randomize(scramble);  // extraction must first re-stabilize it
    const auto fromToken = dfsTreeFromCirculation(dftc, 2'000'000);
    const auto reference = portOrderDfsTree(g);
    EXPECT_EQ(fromToken, reference) << "n=" << g.nodeCount();
  }
}

}  // namespace
}  // namespace ssno
