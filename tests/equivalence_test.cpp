// Chapter 5 observation, made precise and tested:
//   "if the spanning tree maintained in STNO is a DFS tree of the graph,
//    then the naming could be similar for both algorithms, provided the
//    respective ordering at individual nodes is the same."
// With port order as the shared ordering at every node, DFTNO's names
// (DFS preorder via the token counter) coincide exactly with STNO's
// names (preorder via weight intervals) — and hence the edge labels
// coincide too.
#include <gtest/gtest.h>

#include "core/daemon.hpp"
#include "core/graph.hpp"
#include "core/scheduler.hpp"
#include "orientation/dftno.hpp"
#include "orientation/stno.hpp"
#include "sptree/dfs_tree.hpp"

namespace ssno {
namespace {

Orientation stabilizeDftno(Dftno& dftno, std::uint64_t seed) {
  Rng rng(seed);
  dftno.randomize(rng);
  RoundRobinDaemon daemon;
  Simulator sim(dftno, daemon, rng);
  const RunStats stats =
      sim.runUntil([&dftno] { return dftno.isLegitimate(); }, 30'000'000);
  EXPECT_TRUE(stats.converged);
  return dftno.orientation();
}

Orientation stabilizeStno(Stno& stno, std::uint64_t seed) {
  Rng rng(seed);
  stno.randomize(rng);
  RoundRobinDaemon daemon;
  Simulator sim(stno, daemon, rng);
  const RunStats stats = sim.runToQuiescence(30'000'000);
  EXPECT_TRUE(stats.terminal);
  return stno.orientation();
}

class Equivalence : public ::testing::TestWithParam<int> {};

TEST_P(Equivalence, DftnoNamesEqualStnoOnDfsTree) {
  const int seed = GetParam();
  Rng topoRng(static_cast<std::uint64_t>(seed) * 31 + 7);
  const std::vector<Graph> graphs = {
      Graph::ring(5 + seed),
      Graph::grid(2 + seed % 2, 3),
      Graph::complete(4 + seed % 3),
      Graph::figure311(),
      Graph::figure221(),
      Graph::randomConnected(8 + seed, 0.3, topoRng),
  };
  for (const Graph& g : graphs) {
    Dftno dftno(g);
    const Orientation viaToken =
        stabilizeDftno(dftno, static_cast<std::uint64_t>(seed) + 1);

    Stno stno(g, portOrderDfsTree(g));
    const Orientation viaTree =
        stabilizeStno(stno, static_cast<std::uint64_t>(seed) + 2);

    EXPECT_EQ(viaToken.name, viaTree.name) << "n=" << g.nodeCount();
    EXPECT_EQ(viaToken.label, viaTree.label) << "n=" << g.nodeCount();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Equivalence, ::testing::Range(0, 6));

TEST(Equivalence, BfsTreeNamingGenerallyDiffers) {
  // The observation is specific to DFS trees: over the BFS tree the
  // interval naming is generally NOT the DFS preorder.  Pin a concrete
  // witness so the equivalence above is shown to be non-vacuous.
  // On a 5-ring the DFS tree is the full path (names 0..4 around the
  // cycle) while the BFS tree splits into two branches at the root.
  const Graph g = Graph::ring(5);
  Dftno dftno(g);
  const Orientation viaToken = stabilizeDftno(dftno, 3);
  Stno stno(g);  // BFS substrate
  const Orientation viaBfs = stabilizeStno(stno, 4);
  // Both are valid orientations...
  EXPECT_TRUE(satisfiesSpec(viaToken));
  EXPECT_TRUE(satisfiesSpec(viaBfs));
  // ...but the name vectors differ on this graph (r's children come in
  // BFS layer order, not DFS discovery order).
  EXPECT_NE(viaToken.name, viaBfs.name);
}

TEST(Equivalence, TokenExtractedTreeFeedsStno) {
  // Full pipeline: stabilize the circulation, extract its DFS tree, run
  // STNO over it, and get DFTNO's orientation back.
  const Graph g = Graph::grid(3, 3);
  Dftc dftc(g);
  Rng rng(5);
  dftc.randomize(rng);
  const std::vector<NodeId> tree = dfsTreeFromCirculation(dftc, 3'000'000);
  Stno stno(g, tree);
  const Orientation viaTree = stabilizeStno(stno, 6);
  const auto pre = portOrderDfsPreorder(g);
  for (NodeId p = 0; p < g.nodeCount(); ++p)
    EXPECT_EQ(viaTree.nameOf(p), pre[static_cast<std::size_t>(p)]);
}

}  // namespace
}  // namespace ssno
