// Property-based sweeps for DFTNO (Theorem 3.2.3): from arbitrary
// configurations, under every (fair) daemon, on a spectrum of
// topologies, the system converges to a legitimate orientation; after
// convergence the orientation satisfies the full §2.3 specification and
// legitimacy is closed.  Also checks the O(n)-after-L_TC shape of the
// stabilization cost on bounded-degree families.
#include <gtest/gtest.h>

#include <algorithm>

#include <cmath>
#include <string>
#include <tuple>

#include "core/daemon.hpp"
#include "core/graph.hpp"
#include "core/scheduler.hpp"
#include "orientation/dftno.hpp"

namespace ssno {
namespace {

enum class Topology {
  kRing,
  kPath,
  kStar,
  kComplete,
  kGrid,
  kBinaryTree,
  kRandomSparse,
  kRandomDense,
  kHypercube,
  kCaterpillar,
};


std::string daemonTag(DaemonKind kind) {
  std::string s = daemonKindName(kind);
  s.erase(std::remove(s.begin(), s.end(), '-'), s.end());
  return s;
}

std::string topologyName(Topology t) {
  switch (t) {
    case Topology::kRing: return "Ring";
    case Topology::kPath: return "Path";
    case Topology::kStar: return "Star";
    case Topology::kComplete: return "Complete";
    case Topology::kGrid: return "Grid";
    case Topology::kBinaryTree: return "BinaryTree";
    case Topology::kRandomSparse: return "RandomSparse";
    case Topology::kRandomDense: return "RandomDense";
    case Topology::kHypercube: return "Hypercube";
    case Topology::kCaterpillar: return "Caterpillar";
  }
  return "?";
}

Graph makeTopology(Topology t, int scale, Rng& rng) {
  switch (t) {
    case Topology::kRing: return Graph::ring(3 + scale * 3);
    case Topology::kPath: return Graph::path(2 + scale * 3);
    case Topology::kStar: return Graph::star(3 + scale * 3);
    case Topology::kComplete: return Graph::complete(3 + scale);
    case Topology::kGrid: return Graph::grid(2 + scale, 3);
    case Topology::kBinaryTree: return Graph::kAryTree(3 + scale * 4, 2);
    case Topology::kRandomSparse:
      return Graph::randomConnected(5 + scale * 4, 0.1, rng);
    case Topology::kRandomDense:
      return Graph::randomConnected(5 + scale * 3, 0.5, rng);
    case Topology::kHypercube: return Graph::hypercube(2 + scale);
    case Topology::kCaterpillar: return Graph::caterpillar(2 + scale, 2);
  }
  return Graph::ring(3);
}

class DftnoProperty
    : public ::testing::TestWithParam<std::tuple<Topology, int, DaemonKind>> {
};

TEST_P(DftnoProperty, ConvergesAndSatisfiesSpec) {
  const auto [topo, seed, kind] = GetParam();
  Rng topoRng(static_cast<std::uint64_t>(seed) * 7919 + 3);
  const Graph g = makeTopology(topo, 1 + seed % 3, topoRng);
  Dftno dftno(g);
  Rng rng(static_cast<std::uint64_t>(seed) * 131 + 17);
  dftno.randomize(rng);
  auto daemon = makeDaemon(kind);
  Simulator sim(dftno, *daemon, rng);
  const RunStats stats =
      sim.runUntil([&dftno] { return dftno.isLegitimate(); }, 20'000'000);
  ASSERT_TRUE(stats.converged)
      << topologyName(topo) << " n=" << g.nodeCount() << " under "
      << daemon->name();

  // The converged orientation satisfies SP1 ∧ SP2 and the §1.3 labeling
  // quality predicates.
  const Orientation o = dftno.orientation();
  EXPECT_TRUE(satisfiesSpec(o));
  EXPECT_TRUE(isLocallyOriented(o));
  EXPECT_TRUE(hasEdgeSymmetry(o));

  // Closure: legitimacy persists over further execution.
  for (int i = 0; i < 50; ++i) {
    (void)sim.stepOnce();
    ASSERT_TRUE(dftno.isLegitimate()) << "closure broken at step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DftnoProperty,
    ::testing::Combine(
        ::testing::Values(Topology::kRing, Topology::kPath, Topology::kStar,
                          Topology::kComplete, Topology::kGrid,
                          Topology::kBinaryTree, Topology::kRandomSparse,
                          Topology::kRandomDense, Topology::kHypercube,
                          Topology::kCaterpillar),
        ::testing::Range(0, 4),
        ::testing::Values(DaemonKind::kCentral, DaemonKind::kDistributed,
                          DaemonKind::kSynchronous, DaemonKind::kRoundRobin)),
    [](const auto& info) {
      return topologyName(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param)) + "_" +
             daemonTag(std::get<2>(info.param));
    });

// O(n) shape (§3.2.3): once the substrate is legitimate, the number of
// orientation-layer moves (Nodelabel/UpdateMax piggybacked on token moves
// plus EdgeLabel corrections) to reach L_NO is bounded linearly on
// bounded-degree families.
TEST(DftnoScalingShape, MovesAfterSubstrateLegitAreLinearOnRings) {
  std::vector<double> xs, ys;
  for (int n : {6, 12, 24, 48}) {
    Dftno dftno(Graph::ring(n));
    Rng rng(42);
    dftno.randomize(rng);
    RoundRobinDaemon daemon;
    Simulator sim(dftno, daemon, rng);
    // Phase 1: substrate stabilization.
    const RunStats s1 = sim.runUntil(
        [&dftno] { return dftno.substrateLegitimate(); }, 20'000'000);
    ASSERT_TRUE(s1.converged);
    // Phase 2: orientation stabilization.
    const RunStats s2 =
        sim.runUntil([&dftno] { return dftno.isLegitimate(); }, 20'000'000);
    ASSERT_TRUE(s2.converged);
    xs.push_back(n);
    ys.push_back(static_cast<double>(s2.moves));
  }
  // Linearity: moves per node stays within a constant band.
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double perNode = ys[i] / xs[i];
    EXPECT_LT(perNode, 12.0) << "n=" << xs[i];
  }
}

}  // namespace
}  // namespace ssno
