// Unit tests for the trace recorder.
#include "core/trace.hpp"

#include <gtest/gtest.h>

#include "core/daemon.hpp"
#include "core/graph.hpp"
#include "core/scheduler.hpp"
#include "toy_protocols.hpp"

namespace ssno {
namespace {

TEST(TraceRecorder, RecordsMovesInOrder) {
  ZeroProtocol proto(Graph::path(3), 2);
  RoundRobinDaemon daemon;
  Rng rng(1);
  Simulator sim(proto, daemon, rng);
  TraceRecorder trace(proto);
  sim.setMoveObserver([&trace](const Move& m) { trace.record(m); });
  (void)sim.runToQuiescence(100);
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events()[0].node, 0);
  EXPECT_EQ(trace.events()[1].node, 1);
  EXPECT_EQ(trace.events()[2].node, 2);
  EXPECT_EQ(trace.events()[0].action, "Zero");
  EXPECT_EQ(trace.events()[0].stateAfter, "v=0");
  EXPECT_EQ(trace.events()[2].index, 2);
}

TEST(TraceRecorder, RenderContainsActionsAndStates) {
  ZeroProtocol proto(Graph::path(2), 2);
  CentralDaemon daemon;
  Rng rng(2);
  Simulator sim(proto, daemon, rng);
  TraceRecorder trace(proto);
  sim.setMoveObserver([&trace](const Move& m) { trace.record(m); });
  (void)sim.runToQuiescence(100);
  const std::string text = trace.render();
  EXPECT_NE(text.find("Zero"), std::string::npos);
  EXPECT_NE(text.find("v=0"), std::string::npos);
}

TEST(TraceRecorder, FilterSelectsByAction) {
  ZeroProtocol proto(Graph::path(2), 2);
  CentralDaemon daemon;
  Rng rng(3);
  Simulator sim(proto, daemon, rng);
  TraceRecorder trace(proto);
  sim.setMoveObserver([&trace](const Move& m) { trace.record(m); });
  (void)sim.runToQuiescence(100);
  EXPECT_FALSE(trace.renderFiltered({"Zero"}).empty());
  EXPECT_TRUE(trace.renderFiltered({"NoSuchAction"}).empty());
}

TEST(TraceRecorder, ClearResets) {
  ZeroProtocol proto(Graph::path(2), 2);
  TraceRecorder trace(proto);
  trace.record(Move{0, 0});
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
}

}  // namespace
}  // namespace ssno
