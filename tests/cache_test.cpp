// Persistent content-addressed result cache (serve/cache.hpp): hits
// must be bit-identical, every flavour of damaged record must read as a
// miss (never an exception), and concurrent writers of one key must
// race benignly through the write-temp + atomic-rename protocol.
#include "serve/cache.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <thread>
#include <vector>

#include "exp/report.hpp"
#include "exp/scenario.hpp"

namespace ssno::serve {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& leaf) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("ssno-" + leaf);
  fs::remove_all(dir);
  return dir.string();
}

exp::Scenario smallScenario() {
  exp::Scenario s = exp::parseScenario("dftc/central/ring:16");
  s.trials = 2;
  return s;
}

/// The single record file the cache wrote for `s`.
fs::path recordFile(const ResultCache& cache, const exp::Scenario& s) {
  const std::string key = cache.keyHex(s);
  return fs::path(cache.dir()) / key.substr(0, 2) / (key + ".rec");
}

TEST(ResultCache, StoreThenFetchIsBitIdentical) {
  ResultCache cache(freshDir("hit"));
  const exp::Scenario s = smallScenario();
  EXPECT_FALSE(cache.fetch(s).has_value());  // cold

  const std::string payload = "nodes 16\nedges 16\ntrials 2\nfailed 0\n"
                              "cores 1\n";
  ASSERT_TRUE(cache.store(s, payload));
  const auto back = cache.fetch(s);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);

  const ResultCache::Counters c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.stores, 1u);
  EXPECT_EQ(c.badRecords, 0u);
}

TEST(ResultCache, FetchResultReattachesTheCallersName) {
  ResultCache cache(freshDir("rename"));
  const exp::ExperimentRunner runner(1);
  exp::Scenario s = smallScenario();
  ASSERT_TRUE(cache.storeResult(runner.run(s)));

  exp::Scenario relabeled = s;
  relabeled.name = "my custom label";
  const auto hit = cache.fetchResult(relabeled);
  ASSERT_TRUE(hit.has_value());  // name is not part of the key
  EXPECT_EQ(hit->scenario.name, "my custom label");
  EXPECT_EQ(hit->nodeCount, 16);
}

TEST(ResultCache, TruncatedRecordIsAMissNotACrash) {
  ResultCache cache(freshDir("trunc"));
  const exp::Scenario s = smallScenario();
  ASSERT_TRUE(cache.store(s, "nodes 16\nedges 16\ntrials 2\nfailed 0\n"
                             "cores 1\n"));
  const fs::path rec = recordFile(cache, s);
  ASSERT_TRUE(fs::exists(rec));
  fs::resize_file(rec, fs::file_size(rec) / 2);

  EXPECT_FALSE(cache.fetch(s).has_value());
  EXPECT_EQ(cache.counters().badRecords, 1u);
}

TEST(ResultCache, CorruptedPayloadByteFailsTheCrc) {
  ResultCache cache(freshDir("crc"));
  const exp::Scenario s = smallScenario();
  const std::string payload = "nodes 16\nedges 16\ntrials 2\nfailed 0\n"
                              "cores 1\n";
  ASSERT_TRUE(cache.store(s, payload));
  const fs::path rec = recordFile(cache, s);
  {
    std::fstream f(rec, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-3, std::ios::end);  // flip a byte inside the payload
    f.put('X');
  }
  EXPECT_FALSE(cache.fetch(s).has_value());
  EXPECT_EQ(cache.counters().badRecords, 1u);
}

TEST(ResultCache, ForeignSaltRecordsAreInvisible) {
  const std::string dir = freshDir("salt");
  const exp::Scenario s = smallScenario();
  {
    ResultCache old(dir, "ssno-serve-v0-obsolete");
    ASSERT_TRUE(old.store(s, "nodes 16\nedges 16\ntrials 2\nfailed 0\n"
                             "cores 1\n"));
  }
  ResultCache cache(dir);  // current salt
  // A different salt changes the key, so this is a plain miss (the old
  // record sits at a key the new cache never derives).
  EXPECT_FALSE(cache.fetch(s).has_value());
  EXPECT_EQ(cache.counters().hits, 0u);
}

TEST(ResultCache, GarbageAtTheRightPathIsABadRecordMiss) {
  ResultCache cache(freshDir("garbage"));
  const exp::Scenario s = smallScenario();
  const fs::path rec = recordFile(cache, s);
  fs::create_directories(rec.parent_path());
  std::ofstream(rec) << "not a record at all\n";
  EXPECT_FALSE(cache.fetch(s).has_value());
  EXPECT_EQ(cache.counters().badRecords, 1u);
}

TEST(ResultCache, ConcurrentWritersOfOneKeyRaceBenignly) {
  ResultCache cache(freshDir("race"));
  const exp::Scenario s = smallScenario();
  std::string payload = "nodes 16\nedges 16\ntrials 2\nfailed 0\ncores 1\n";
  for (int i = 0; i < 200; ++i) payload += "metric pad 0 0 0 0 0 0 0\n";

  std::vector<std::thread> writers;
  for (int t = 0; t < 8; ++t)
    writers.emplace_back([&] {
      for (int i = 0; i < 25; ++i) ASSERT_TRUE(cache.store(s, payload));
    });
  for (std::thread& th : writers) th.join();

  const auto back = cache.fetch(s);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);  // some complete record won; none interleaved
  // No temp droppings left behind.
  for (const auto& entry : fs::recursive_directory_iterator(cache.dir())) {
    if (entry.is_regular_file()) {
      EXPECT_EQ(entry.path().extension(), ".rec") << entry.path();
    }
  }
}

TEST(ResultCache, PruneEvictsOldestRecordsFirst) {
  ResultCache cache(freshDir("prune"));
  // Four records with explicit, strictly increasing mtimes — same-second
  // store times would otherwise make the LRU order depend on key hashes.
  std::vector<exp::Scenario> stored;
  const auto base = fs::file_time_type::clock::now();
  for (int i = 0; i < 4; ++i) {
    exp::Scenario s = smallScenario();
    s.seed = static_cast<std::uint64_t>(i + 1);
    const std::string payload(100, 'a' + static_cast<char>(i));
    ASSERT_TRUE(cache.store(s, payload));
    fs::last_write_time(recordFile(cache, s),
                        base + std::chrono::seconds(i));
    stored.push_back(std::move(s));
  }
  // A non-record file in the tree must survive any prune.
  const fs::path stray = fs::path(cache.dir()) / "README.txt";
  std::ofstream(stray) << "not a record\n";
  // All four records are the same size (identical header shape, equal
  // payload lengths, single-digit seeds).
  const std::uint64_t size = fs::file_size(recordFile(cache, stored[0]));

  // A generous budget removes nothing.
  ResultCache::PruneStats none = cache.prune(5 * size);
  EXPECT_EQ(none.removed, 0u);
  EXPECT_EQ(none.kept, 4u);
  EXPECT_EQ(none.bytesKept, 4 * size);
  EXPECT_EQ(none.bytesRemoved, 0u);

  // Room for two and a half records forces out the two oldest.
  ResultCache::PruneStats stats = cache.prune(2 * size + size / 2);
  EXPECT_EQ(stats.removed, 2u);
  EXPECT_EQ(stats.kept, 2u);
  EXPECT_EQ(stats.bytesRemoved, 2 * size);
  EXPECT_EQ(stats.bytesKept, 2 * size);
  EXPECT_FALSE(fs::exists(recordFile(cache, stored[0])));
  EXPECT_FALSE(fs::exists(recordFile(cache, stored[1])));
  EXPECT_TRUE(fs::exists(recordFile(cache, stored[2])));
  EXPECT_TRUE(fs::exists(recordFile(cache, stored[3])));
  EXPECT_TRUE(fs::exists(stray));

  // The survivors still serve bit-identical hits.
  const auto back = cache.fetch(stored[3]);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, std::string(100, 'd'));

  // Budget zero clears every record (and only records).
  ResultCache::PruneStats all = cache.prune(0);
  EXPECT_EQ(all.kept, 0u);
  EXPECT_EQ(all.removed, 2u);
  EXPECT_TRUE(fs::exists(stray));
}

TEST(RunAllCached, SecondSweepIsAllHitsAndByteIdentical) {
  ResultCache cache(freshDir("runall"));
  const exp::ExperimentRunner runner(1);
  std::vector<exp::Scenario> sweep;
  for (const char* triple :
       {"dftc/central/ring:16", "space/central/ring:16",
        "chordal-props/central/chordring:16:2,5"}) {
    exp::Scenario s = exp::parseScenario(triple);
    s.trials = 2;
    sweep.push_back(std::move(s));
  }

  const auto cold = runAllCached(runner, sweep, &cache);
  const auto warm = runAllCached(runner, sweep, &cache);
  EXPECT_EQ(exp::toCsv(cold), exp::toCsv(warm));
  EXPECT_EQ(exp::toJson(cold), exp::toJson(warm));

  const ResultCache::Counters c = cache.counters();
  EXPECT_EQ(c.stores, sweep.size());
  EXPECT_EQ(c.hits, sweep.size());

  // nullptr cache degrades to plain runAll.
  const auto direct = runAllCached(runner, sweep, nullptr);
  EXPECT_EQ(exp::toCsv(direct), exp::toCsv(cold));
}

}  // namespace
}  // namespace ssno::serve
