// exp_cli — drive the src/exp experiment harness from the command line.
//
//   exp_cli list
//   exp_cli run <scenario-or-preset> [options]
//   exp_cli run --scenarios FILE [options]
//   exp_cli spill-probe --ids N --capacity C [options]
//
// A scenario is either a preset name (see `list`) or a dynamic triple
// "protocol/daemon/topology", e.g. stno/distributed/torus:4x4 or
// dftno/round-robin/chordring:16:2,5.  A scenario file holds one
// "protocol daemon topology [key=value ...]" per line (# = comment), so
// sweeps can be version-controlled; see src/exp/scenario.hpp.
//
// Options:
//   --scenarios F read scenarios from file F (instead of a name)
//   --trials N    trials per scenario        (default: scenario's own)
//   --threads N   worker threads             (default: hardware)
//   --seed S      base RNG seed              (default: scenario's own)
//   --budget B    move budget / churn horizon
//   --rate R      fault rate (churn protocols)
//   --only NAME   keep only the scenario named NAME
//   --cache-dir D memoize results in the content-addressed cache at D
//   --csv FILE    write long-form CSV        (- for stdout)
//   --json FILE   write JSON                 (- for stdout)
//   --trace-out F record a Chrome trace-event JSON of the whole run to F
//                 (load in Perfetto or chrome://tracing)
//   --metrics F   write the Prometheus text exposition of every obs
//                 counter/gauge/histogram after the run (- for stdout)
//   --timing      opt-in timing breakdown: stamp each trial's
//                 sim_guard_evals_total delta and report a
//                 guard_evals_per_sec rate in the JSON "timing" object
//                 (counters are process-wide — meaningful at --threads 1;
//                 default off, so reports stay byte-identical)
//   --quiet       suppress the human-readable table
//   --io-faults S install a deterministic I/O fault schedule before the
//                 run (grammar in src/io/fault.hpp)
//
// `spill-probe` exercises the mc/spill run-file path end to end for the
// chaos harness: append `--ids N` deterministic ids through a
// FrontierSpill with `--capacity C` (forcing ceil(N/C) run files in
// `--dir`, default the system temp dir), drain everything back, and
// verify the multiset matches exactly.  Exit 0 = exact drain, 3 = a
// named spill error (CRC/magic/truncation — the detected-loss path),
// 4 = silent mismatch (must never happen), 86 = an injected crash.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "io/fault.hpp"
#include "mc/spill.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/cache.hpp"

namespace {

using ssno::exp::ExperimentRunner;
using ssno::exp::Scenario;
using ssno::exp::ScenarioResult;

int usage() {
  std::fprintf(stderr,
               "usage: exp_cli list\n"
               "       exp_cli run <scenario-or-preset> [options]\n"
               "       exp_cli run --scenarios FILE [options]\n"
               "       exp_cli spill-probe --ids N --capacity C [--dir D]\n"
               "           [--io-faults SPEC] [--metrics FILE]\n"
               "options: [--trials N] [--threads N] [--seed S] [--budget B]\n"
               "         [--rate R] [--only NAME] [--cache-dir DIR]\n"
               "         [--csv FILE] [--json FILE] [--trace-out FILE]\n"
               "         [--metrics FILE] [--timing] [--quiet]\n"
               "         [--io-faults SPEC]\n");
  return 2;
}

void writeMetrics(const std::string& path) {
  if (path.empty()) return;
  const std::string text = ssno::obs::Registry::global().renderPrometheus();
  if (path == "-") {
    std::fputs(text.c_str(), stdout);
    return;
  }
  std::ofstream out(path);
  out << text;
}

/// See the header comment for the exit-code taxonomy.
int spillProbe(const std::vector<std::string>& args) {
  std::uint64_t ids = 0, capacity = 0;
  std::string dir, ioFaults, metricsPath;
  try {
    for (std::size_t i = 1; i < args.size(); ++i) {
      auto value = [&]() -> std::string {
        if (i + 1 >= args.size())
          throw std::invalid_argument(args[i] + " needs a value");
        return args[++i];
      };
      if (args[i] == "--ids") ids = std::stoull(value());
      else if (args[i] == "--capacity") capacity = std::stoull(value());
      else if (args[i] == "--dir") dir = value();
      else if (args[i] == "--io-faults") ioFaults = value();
      else if (args[i] == "--metrics") metricsPath = value();
      else throw std::invalid_argument("unknown option " + args[i]);
    }
    if (ids == 0 || capacity == 0)
      throw std::invalid_argument("spill-probe needs --ids and --capacity");
    // Probe setup, not probed state — so before the schedule installs.
    if (!dir.empty()) std::filesystem::create_directories(dir);
    if (!ioFaults.empty())
      ssno::io::installFaultSchedule(ssno::io::FaultSchedule::parse(ioFaults));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "exp_cli: %s\n", e.what());
    return 2;
  }
  try {
    ssno::mc::FrontierSpill spill(capacity, dir);
    // Deterministic, order-insensitive payload: id i carries a golden-
    // ratio hash so torn bytes can't alias a valid permutation.
    std::vector<std::uint64_t> expected(ids);
    for (std::uint64_t i = 0; i < ids; ++i)
      expected[i] = (i + 1) * 0x9E3779B97F4A7C15ULL;
    constexpr std::size_t kBatch = 17;  // exercise partial appends
    for (std::uint64_t at = 0; at < ids; at += kBatch)
      spill.append(expected.data() + at,
                   std::min<std::size_t>(kBatch, ids - at));
    std::vector<std::uint64_t> drained, chunk;
    while (spill.drainChunk(chunk, 64))
      drained.insert(drained.end(), chunk.begin(), chunk.end());
    std::sort(expected.begin(), expected.end());
    std::sort(drained.begin(), drained.end());
    writeMetrics(metricsPath);
    if (drained != expected) {
      std::fprintf(stderr,
                   "exp_cli: spill-probe SILENT MISMATCH: %zu ids out, "
                   "%zu expected\n",
                   drained.size(), expected.size());
      return 4;
    }
    std::fprintf(stderr, "exp_cli: spill-probe ok (%llu ids, %llu runs)\n",
                 static_cast<unsigned long long>(ids),
                 static_cast<unsigned long long>(spill.runsWritten()));
    return 0;
  } catch (const std::exception& e) {
    // Detected loss: the named-error contract.
    std::fprintf(stderr, "exp_cli: spill-probe error: %s\n", e.what());
    writeMetrics(metricsPath);
    return 3;
  }
}

void listScenarios() {
  std::printf("presets:\n");
  for (const std::string& name : ssno::exp::presetNames()) {
    std::printf("  %-20s (%zu scenarios)\n", name.c_str(),
                ssno::exp::makePreset(name).size());
  }
  std::printf(
      "\ndynamic scenarios: protocol/daemon/topology\n"
      "  protocols: dftno stno stno-fixed-tree dftno-churn baseline-churn\n"
      "             dftc bfs-tree lex-dfs-tree dftno-recovery stno-recovery\n"
      "             stno-crash-reset ablation-naming space chordal-props\n"
      "             routing scheduler guard-kernel\n"
      "             model-check[:dftc|:dftno|:dftc-fault]\n"
      "  daemons:   central distributed synchronous round-robin adversarial\n"
      "  topology:  ring:N path:N star:N complete:N hypercube:D grid:RxC\n"
      "             torus:RxC kary:NxK caterpillar:SxL lollipop:CxT\n"
      "             rtree:N[:seed] er:N:P[:seed] chordring:N:c1,c2,...\n"
      "             dreg:N:D[:seed] plaw:N:A[:seed]\n"
      "  example:   exp_cli run stno/distributed/torus:4x4 --trials 20\n"
      "             exp_cli run model-check:dftc/central/path:4\n");
}

void emit(const std::string& path, const std::string& payload,
          const char* what) {
  if (path == "-") {
    std::cout << payload;
    return;
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error(std::string("cannot open ") + path);
  out << payload;
  std::fprintf(stderr, "wrote %s to %s\n", what, path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  if (args[0] == "list") {
    listScenarios();
    return 0;
  }
  if (args[0] == "spill-probe") return spillProbe(args);
  if (args[0] != "run" || args.size() < 2) return usage();

  std::string target, scenarioFile;
  std::size_t optionsFrom = 2;
  if (args[1] == "--scenarios") {
    if (args.size() < 3) return usage();
    scenarioFile = args[2];
    optionsFrom = 3;
  } else {
    target = args[1];
  }
  std::optional<int> trials, threads;
  std::optional<std::uint64_t> seed;
  std::optional<ssno::StepCount> budget;
  std::optional<double> rate;
  std::string csvPath, jsonPath, only, cacheDir, tracePath, metricsPath,
      ioFaults;
  bool quiet = false;
  bool timing = false;
  try {
    for (std::size_t i = optionsFrom; i < args.size(); ++i) {
      auto value = [&]() -> std::string {
        if (i + 1 >= args.size())
          throw std::invalid_argument(args[i] + " needs a value");
        return args[++i];
      };
      if (args[i] == "--trials") trials = std::stoi(value());
      else if (args[i] == "--threads") threads = std::stoi(value());
      else if (args[i] == "--seed") seed = std::stoull(value());
      else if (args[i] == "--budget") budget = std::stoll(value());
      else if (args[i] == "--rate") rate = std::stod(value());
      else if (args[i] == "--only") only = value();
      else if (args[i] == "--cache-dir") cacheDir = value();
      else if (args[i] == "--csv") csvPath = value();
      else if (args[i] == "--json") jsonPath = value();
      else if (args[i] == "--trace-out") tracePath = value();
      else if (args[i] == "--metrics") metricsPath = value();
      else if (args[i] == "--timing") timing = true;
      else if (args[i] == "--quiet") quiet = true;
      else if (args[i] == "--scenarios") scenarioFile = value();
      else if (args[i] == "--io-faults") ioFaults = value();
      else throw std::invalid_argument("unknown option " + args[i]);
    }
    if (!ioFaults.empty())
      ssno::io::installFaultSchedule(ssno::io::FaultSchedule::parse(ioFaults));

    if (!target.empty() && !scenarioFile.empty())
      throw std::invalid_argument(
          "give either a scenario name or --scenarios, not both");
    std::vector<Scenario> scenarios =
        scenarioFile.empty() ? ssno::exp::resolve(target)
                             : ssno::exp::loadScenarioFile(scenarioFile);
    for (Scenario& s : scenarios) {
      if (trials) s.trials = *trials;
      if (seed) s.seed = *seed;
      if (budget) s.budget = *budget;
      if (rate) {
        s.faultRate = *rate;
        // Preset names bake the rate in; keep the label truthful.
        if (const auto tag = s.name.rfind("/rate="); tag != std::string::npos) {
          std::ostringstream label;
          label << s.name.substr(0, tag) << "/rate=" << *rate;
          s.name = label.str();
        }
      }
    }
    // A --rate override can collapse a preset's rate variants into
    // identical scenarios; run each distinct name once.  Scenario files
    // are exempt: same-named lines may differ in key=value overrides.
    if (scenarioFile.empty()) {
      std::set<std::string> seen;
      std::erase_if(scenarios, [&seen](const Scenario& s) {
        return !seen.insert(s.name).second;
      });
    }

    if (!only.empty())
      scenarios = ssno::exp::filterOnly(std::move(scenarios), only);

    std::unique_ptr<ssno::serve::ResultCache> cache;
    if (!cacheDir.empty())
      cache = std::make_unique<ssno::serve::ResultCache>(cacheDir);

    ExperimentRunner runner(threads.value_or(0));
    runner.setTimingBreakdown(timing);
    if (!tracePath.empty()) ssno::obs::startTracing();
    const std::vector<ScenarioResult> results =
        ssno::serve::runAllCached(runner, scenarios, cache.get());
    if (!tracePath.empty()) {
      ssno::obs::stopTracing();
      ssno::obs::writeTrace(tracePath);
      std::fprintf(stderr, "wrote Chrome trace to %s\n", tracePath.c_str());
    }

    if (!quiet) ssno::exp::printTable(std::cout, results);
    if (!csvPath.empty()) emit(csvPath, ssno::exp::toCsv(results), "CSV");
    if (!jsonPath.empty())
      emit(jsonPath, ssno::exp::toJson(results, /*includeTiming=*/true),
           "JSON");
    if (!metricsPath.empty())
      emit(metricsPath, ssno::obs::Registry::global().renderPrometheus(),
           "metrics");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "exp_cli: %s\n", e.what());
    return 1;
  }
  return 0;
}
