// Regenerates the paper's three figures as execution traces:
//   Figure 2.2.1 — chordal sense of direction on a 5-node example
//   Figure 3.1.1 — DFTNO node labeling, step by step (i)–(x)
//   Figure 4.1.1 — STNO weights bottom-up, then names top-down (i)–(vi)
//
// Run:  ./figure_traces
#include <cstdio>
#include <map>
#include <string>

#include "core/daemon.hpp"
#include "core/graph.hpp"
#include "core/scheduler.hpp"
#include "orientation/chordal.hpp"
#include "orientation/dftno.hpp"
#include "orientation/stno.hpp"

namespace {

using namespace ssno;

// The paper's node letters for Figure 3.1.1: r=0, a=1, b=2, c=3, d=4.
const std::map<NodeId, std::string> kLetters{
    {0, "r"}, {1, "a"}, {2, "b"}, {3, "c"}, {4, "d"}};

void figure221() {
  std::printf("==== Figure 2.2.1: chordal sense of direction ====\n");
  std::printf("cycle 0-1-2-3-4 with chord 0-2; every link labeled by the\n");
  std::printf("cyclic distance of its endpoint names (inverse mod 5 on "
              "the far side):\n\n");
  const Graph g = Graph::figure221();
  const Orientation o = inducedChordalOrientation(g, {0, 1, 2, 3, 4}, 5);
  std::printf("%s\n", renderOrientation(o).c_str());
}

void figure311() {
  std::printf("==== Figure 3.1.1: DFTNO node labeling ====\n");
  std::printf("graph: r-b, r-a, b-d, d-c (root explores b before a)\n\n");
  Dftno dftno(Graph::figure311());
  dftno.substrate().resetClean();

  int step = 1;
  std::printf("(%-5s) %s\n", "i", "all processors unvisited");
  // Drive the deterministic legitimate execution for one full round,
  // narrating Start / Forward / Backtrack like the figure does.
  int starts = 0;
  while (starts < 2) {
    const auto moves = dftno.enabledMoves();
    const Move m = moves.front();
    const std::string who = kLetters.at(m.node);
    if (m.action == Dftc::kStart) {
      ++starts;
      if (starts == 2) break;
      std::printf("(%-5s) root generates the token; names itself 0, "
                  "max=0\n", "ii");
      step = 3;
    }
    dftno.execute(m.node, m.action);
    if (m.action == Dftc::kForward) {
      std::printf("(%-5s) token -> %s: names itself %d (max_parent+1), "
                  "max=%d\n",
                  std::to_string(step).c_str(), who.c_str(),
                  dftno.name(m.node), dftno.maxSeen(m.node));
      ++step;
    } else if (m.action == Dftc::kAdvance) {
      std::printf("(%-5s) token backtracks to %s carrying max=%d\n",
                  std::to_string(step).c_str(), who.c_str(),
                  dftno.maxSeen(m.node));
      ++step;
    }
  }
  std::printf("\nfinal names (figure step x):");
  for (const auto& [node, letter] : kLetters)
    std::printf("  %s=%d", letter.c_str(), dftno.name(node));
  std::printf("\n\n");
}

void figure411() {
  std::printf("==== Figure 4.1.1: STNO weights and naming ====\n");
  std::printf("tree: root 0 with children {1,2}; node 1 with children "
              "{3,4}\n\n");
  const Graph g(5, {{0, 1}, {0, 2}, {1, 3}, {1, 4}});
  Stno stno(g, {kNoNode, 0, 0, 1, 1});
  // Start from a state with all weights/names wrong so the whole
  // bottom-up + top-down cascade is visible.
  Rng rng(1);
  stno.randomize(rng);

  auto printWeights = [&stno] {
    std::printf("   weights:");
    for (NodeId p = 0; p < 5; ++p) std::printf(" w%d=%d", p, stno.weight(p));
    std::printf("\n");
  };
  auto printNames = [&stno] {
    std::printf("   names:  ");
    for (NodeId p = 0; p < 5; ++p) std::printf(" eta%d=%d", p, stno.name(p));
    std::printf("\n");
  };
  // The protocol converges under ANY schedule; for the figure we drive
  // the one the paper draws: the weight wave bottom-up (steps i-iii),
  // then the naming wave top-down (iv-vi), then edge labeling.
  auto drainAction = [&stno](int action) {
    std::vector<NodeId> fired;
    bool progress = true;
    while (progress) {
      progress = false;
      for (NodeId p = 0; p < stno.graph().nodeCount(); ++p) {
        if (stno.enabled(p, action)) {
          stno.execute(p, action);
          fired.push_back(p);
          progress = true;
        }
      }
    }
    return fired;
  };
  // One synchronous wave of `action`: all enabled processors act against
  // the pre-wave configuration (the figure's lock-step levels).
  auto syncWave = [&stno](int action) {
    const std::vector<int> pre = stno.rawConfiguration();
    std::vector<std::pair<NodeId, std::vector<int>>> post;
    for (NodeId p = 0; p < stno.graph().nodeCount(); ++p) {
      if (!stno.enabled(p, action)) continue;
      stno.setRawConfiguration(pre);
      stno.execute(p, action);
      post.emplace_back(p, stno.rawNode(p));
    }
    stno.setRawConfiguration(pre);
    for (const auto& [p, raw] : post) stno.setRawNode(p, raw);
    return !post.empty();
  };
  int step = 0;
  const char* romans[] = {"i", "ii", "iii", "iv", "v", "vi", "vii", "viii"};
  while (syncWave(Stno::kWeight)) {
    std::printf("(%s) weight wave\n", romans[std::min(step++, 7)]);
    printWeights();
  }
  while (syncWave(Stno::kNodeLabel)) {
    std::printf("(%s) naming wave (top-down interval distribution)\n",
                romans[std::min(step++, 7)]);
    printNames();
  }
  (void)drainAction(Stno::kEdgeLabel);
  std::printf("\nfinal (figure step vi): ");
  printNames();
  std::printf("   edge labels:\n%s",
              renderOrientation(stno.orientation()).c_str());
}

}  // namespace

int main() {
  figure221();
  figure311();
  figure411();
  return 0;
}
