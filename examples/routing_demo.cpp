// Routing with a chordal sense of direction (the paper's §1.3
// application): stabilize DFTNO on a torus, then route point-to-point
// messages using only node names and edge labels — and compare the
// message cost against flooding an unoriented network.
//
// Run:  ./routing_demo
#include <cstdio>

#include "apps/broadcast.hpp"
#include "apps/routing.hpp"
#include "core/daemon.hpp"
#include "core/graph.hpp"
#include "core/scheduler.hpp"
#include "orientation/dftno.hpp"

int main() {
  using namespace ssno;

  const Graph g = Graph::torus(4, 5);
  std::printf("torus 4x5: %d processors, %d links\n", g.nodeCount(),
              g.edgeCount());

  Dftno dftno(g);
  Rng rng(7);
  dftno.randomize(rng);
  RoundRobinDaemon daemon;
  Simulator sim(dftno, daemon, rng);
  const RunStats stats =
      sim.runUntil([&dftno] { return dftno.isLegitimate(); }, 50'000'000);
  std::printf("orientation stabilized in %lld moves\n\n",
              static_cast<long long>(stats.moves));

  const Orientation o = dftno.orientation();

  // Unicast demos: route by destination NAME, not by address.
  for (auto [src, dstName] : {std::pair<NodeId, int>{0, 7},
                              {3, 19}, {12, 1}}) {
    const RouteResult r = routeGreedyWithDetours(o, src, dstName, 3);
    std::printf("route node %d -> name %d: %s in %d hops (",
                src, dstName, r.delivered ? "delivered" : "FAILED",
                r.hops);
    for (std::size_t i = 0; i < r.path.size(); ++i)
      std::printf("%s%d", i ? " " : "", r.path[i]);
    std::printf(")\n");
  }

  // Aggregate quality over all pairs.
  const RoutingStats rs = evaluateRouting(o, 3);
  std::printf("\nall-pairs: %.1f%% delivered, mean stretch %.2f, "
              "max stretch %.2f\n",
              100.0 * rs.delivered / rs.pairs, rs.meanStretch,
              rs.maxStretch);

  // Broadcast comparison: with the orientation the token traversal uses
  // 2(n-1) messages; without it, 2m.
  const TraversalResult with = traverseWithOrientation(o, g.root());
  const TraversalResult without = traverseWithoutOrientation(g, g.root());
  std::printf("\ntraversal messages: %d with the sense of direction, "
              "%d without (%.1fx saving)\n",
              with.messages, without.messages,
              static_cast<double>(without.messages) / with.messages);
  return 0;
}
