// exp_serve — the always-on experiment service.
//
//   exp_serve --socket PATH [options]    serve an AF_UNIX socket
//   exp_serve --pipe [options]           serve one stdin/stdout session
//
// Options:
//   --cache-dir DIR       persistent content-addressed result cache
//   --checkpoint-dir DIR  resumable-sweep checkpoints (default: cache
//                         dir's "checkpoints" subdir when caching)
//   --workers N           worker threads (default: hardware)
//   --trial-threads N     threads inside one unit (default: 1)
//   --trace-out FILE      record a Chrome trace-event JSON for the whole
//                         service lifetime, written at shutdown
//   --metrics FILE        write the Prometheus text exposition at
//                         shutdown (- for stderr); live values are
//                         always available via the `metrics` verb
//   --io-faults SPEC      install a deterministic I/O fault schedule
//                         (grammar in src/io/fault.hpp) — the chaos
//                         harness's hook for torn writes, ENOSPC, and
//                         injected crashes on every durable-state path
//
// When the cache directory cannot be created (full/unwritable disk),
// the service starts CACHELESS instead of dying: a warning goes to
// stderr, the serve_degraded gauge reads 1 in the metrics verb, and
// every unit recomputes.  Checkpoints keep working if their own dir is
// writable.
//
// The protocol (line-delimited JSON; submit/resume/status/result/
// cancel/stats/shutdown) is documented in src/serve/server.hpp and the
// README.  Pipe mode serves exactly one session and exits at EOF or a
// shutdown verb — it is what the tests and shell one-liners use:
//
//   printf '%s\n' '{"verb":"submit","target":"dftc/central/ring:64"}'
//       '{"verb":"result","job":1}'
//       | exp_serve --pipe --cache-dir /tmp/ssno-cache
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: exp_serve --socket PATH [options]\n"
               "       exp_serve --pipe [options]\n"
               "options: [--cache-dir DIR] [--checkpoint-dir DIR]\n"
               "         [--workers N] [--trial-threads N]\n"
               "         [--trace-out FILE] [--metrics FILE]\n"
               "         [--io-faults SPEC]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string socketPath, cacheDir, checkpointDir, tracePath, metricsPath,
      ioFaults;
  bool pipe = false;
  int workers = 0, trialThreads = 1;
  try {
    for (std::size_t i = 0; i < args.size(); ++i) {
      auto value = [&]() -> std::string {
        if (i + 1 >= args.size())
          throw std::invalid_argument(args[i] + " needs a value");
        return args[++i];
      };
      if (args[i] == "--socket") socketPath = value();
      else if (args[i] == "--pipe") pipe = true;
      else if (args[i] == "--cache-dir") cacheDir = value();
      else if (args[i] == "--checkpoint-dir") checkpointDir = value();
      else if (args[i] == "--workers") workers = std::stoi(value());
      else if (args[i] == "--trial-threads") trialThreads = std::stoi(value());
      else if (args[i] == "--trace-out") tracePath = value();
      else if (args[i] == "--metrics") metricsPath = value();
      else if (args[i] == "--io-faults") ioFaults = value();
      else throw std::invalid_argument("unknown option " + args[i]);
    }
    if (pipe == !socketPath.empty()) {
      usage();
      throw std::invalid_argument("give exactly one of --pipe or --socket");
    }
    if (!ioFaults.empty())
      ssno::io::installFaultSchedule(ssno::io::FaultSchedule::parse(ioFaults));

    std::unique_ptr<ssno::serve::ResultCache> cache;
    if (!cacheDir.empty()) {
      try {
        cache = std::make_unique<ssno::serve::ResultCache>(cacheDir);
      } catch (const std::runtime_error& e) {
        // Degrade, don't die: an unusable cache dir costs recomputes,
        // not availability.  The gauge makes the state observable.
        std::fprintf(stderr, "exp_serve: %s; serving cacheless\n", e.what());
        ssno::obs::Registry::global().gauge("serve_degraded").set(1);
      }
    }
    // Default the checkpoint dir under the cache dir only when the
    // cache actually came up — a failed cache dir would fail here too,
    // and checkpoints are optional.
    if (checkpointDir.empty() && cache != nullptr)
      checkpointDir = cacheDir + "/checkpoints";

    ssno::serve::SchedulerOptions opt;
    opt.workers = workers;
    opt.trialThreads = trialThreads;
    opt.cache = cache.get();
    opt.checkpointDir = checkpointDir;
    ssno::serve::ExpServer server(opt);

    if (!tracePath.empty()) ssno::obs::startTracing();
    if (pipe) {
      server.serveStream(std::cin, std::cout);
    } else {
      const int fd = server.listenUnix(socketPath);
      std::fprintf(stderr, "exp_serve: listening on %s\n",
                   socketPath.c_str());
      server.acceptLoop(fd);
    }
    if (!tracePath.empty()) {
      ssno::obs::stopTracing();
      ssno::obs::writeTrace(tracePath);
      std::fprintf(stderr, "exp_serve: wrote Chrome trace to %s\n",
                   tracePath.c_str());
    }
    if (!metricsPath.empty()) {
      const std::string text =
          ssno::obs::Registry::global().renderPrometheus();
      if (metricsPath == "-") {
        std::fputs(text.c_str(), stderr);
      } else {
        std::ofstream out(metricsPath);
        if (!out)
          throw std::runtime_error("cannot open " + metricsPath);
        out << text;
        std::fprintf(stderr, "exp_serve: wrote metrics to %s\n",
                     metricsPath.c_str());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "exp_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
