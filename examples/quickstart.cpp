// Quickstart: orient an arbitrary rooted network, self-stabilizing from
// a corrupted initial state.
//
//   1. build a topology (rooted at node 0),
//   2. wrap it in DFTNO (token-based) or STNO (tree-based),
//   3. scramble every variable (the adversary's transient fault),
//   4. run under a daemon until the legitimacy predicate holds,
//   5. read back unique node names and chordal edge labels.
//
// Run:  ./quickstart
#include <cstdio>

#include "core/daemon.hpp"
#include "core/graph.hpp"
#include "core/scheduler.hpp"
#include "orientation/chordal.hpp"
#include "orientation/dftno.hpp"
#include "orientation/stno.hpp"

int main() {
  using namespace ssno;

  // A 3x3 grid, rooted at the top-left corner.
  const Graph g = Graph::grid(3, 3);
  std::printf("network: %d processors, %d links, root %d\n\n",
              g.nodeCount(), g.edgeCount(), g.root());

  // ---- DFTNO: orientation by depth-first token circulation ----------
  Dftno dftno(g);
  Rng rng(2024);
  dftno.randomize(rng);  // arbitrary initial configuration

  RoundRobinDaemon daemon;  // weakly fair, as DFTNO requires
  Simulator sim(dftno, daemon, rng);
  const RunStats stats =
      sim.runUntil([&dftno] { return dftno.isLegitimate(); }, 10'000'000);
  std::printf("DFTNO stabilized after %lld moves (%lld rounds)\n",
              static_cast<long long>(stats.moves),
              static_cast<long long>(stats.rounds));

  const Orientation o = dftno.orientation();
  std::printf("%s", renderOrientation(o).c_str());
  std::printf("SP1 (unique names): %s\n",
              satisfiesSP1(o) ? "ok" : "VIOLATED");
  std::printf("SP2 (chordal labels): %s\n\n",
              satisfiesSP2(o) ? "ok" : "VIOLATED");

  // ---- STNO: orientation over a self-stabilizing spanning tree ------
  Stno stno(g);
  stno.randomize(rng);
  AdversarialDaemon unfair;  // STNO needs no fairness
  Simulator sim2(stno, unfair, rng);
  const RunStats stats2 = sim2.runToQuiescence(10'000'000);
  std::printf("STNO silent after %lld moves; legitimate: %s\n",
              static_cast<long long>(stats2.moves),
              stno.isLegitimate() ? "yes" : "no");
  std::printf("%s", renderOrientation(stno.orientation()).c_str());
  return 0;
}
