// ssno_cli — run any protocol on any topology from the command line.
//
//   ssno_cli [--topo ring:12 | path:8 | star:9 | complete:6 | grid:3x4 |
//             torus:3x4 | hypercube:4 | lollipop:4x5 | random:16x0.2]
//            [--protocol dftno | stno | stno-dfs]
//            [--daemon central|distributed|synchronous|roundrobin|adversarial]
//            [--seed N] [--faults K] [--budget MOVES] [--dot] [--trace]
//
// Scrambles the configuration, stabilizes, prints the orientation (and
// optionally a Graphviz DOT rendering with the assigned names), injects
// K random faults and re-stabilizes.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/daemon.hpp"
#include "core/fault.hpp"
#include "core/graph.hpp"
#include "core/graph_algo.hpp"
#include "core/scheduler.hpp"
#include "core/trace.hpp"
#include "orientation/dftno.hpp"
#include "orientation/stno.hpp"
#include "sptree/dfs_tree.hpp"

namespace {

using namespace ssno;

struct Options {
  std::string topo = "grid:3x3";
  std::string protocol = "dftno";
  std::string daemon = "roundrobin";
  std::uint64_t seed = 1;
  int faults = 0;
  StepCount budget = 50'000'000;
  bool dot = false;
  bool trace = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--topo T] [--protocol dftno|stno|stno-dfs] "
               "[--daemon D] [--seed N] [--faults K] [--budget M] [--dot] "
               "[--trace]\n",
               argv0);
  std::exit(2);
}

Graph parseTopology(const std::string& spec, Rng& rng) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string arg = colon == std::string::npos ? "" : spec.substr(colon + 1);
  auto two = [&arg](char sep) {
    const auto x = arg.find(sep);
    return std::pair<int, int>{std::stoi(arg.substr(0, x)),
                               std::stoi(arg.substr(x + 1))};
  };
  if (kind == "ring") return Graph::ring(std::stoi(arg));
  if (kind == "path") return Graph::path(std::stoi(arg));
  if (kind == "star") return Graph::star(std::stoi(arg));
  if (kind == "complete") return Graph::complete(std::stoi(arg));
  if (kind == "hypercube") return Graph::hypercube(std::stoi(arg));
  if (kind == "grid") {
    const auto [r, c] = two('x');
    return Graph::grid(r, c);
  }
  if (kind == "torus") {
    const auto [r, c] = two('x');
    return Graph::torus(r, c);
  }
  if (kind == "lollipop") {
    const auto [a, b] = two('x');
    return Graph::lollipop(a, b);
  }
  if (kind == "random") {
    const auto x = arg.find('x');
    return Graph::randomConnected(std::stoi(arg.substr(0, x)),
                                  std::stod(arg.substr(x + 1)), rng);
  }
  std::fprintf(stderr, "unknown topology '%s'\n", spec.c_str());
  std::exit(2);
}

DaemonKind parseDaemon(const std::string& name) {
  if (name == "central") return DaemonKind::kCentral;
  if (name == "distributed") return DaemonKind::kDistributed;
  if (name == "synchronous") return DaemonKind::kSynchronous;
  if (name == "roundrobin") return DaemonKind::kRoundRobin;
  if (name == "adversarial") return DaemonKind::kAdversarial;
  std::fprintf(stderr, "unknown daemon '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--topo") opt.topo = next();
    else if (a == "--protocol") opt.protocol = next();
    else if (a == "--daemon") opt.daemon = next();
    else if (a == "--seed") opt.seed = std::stoull(next());
    else if (a == "--faults") opt.faults = std::stoi(next());
    else if (a == "--budget") opt.budget = std::stoll(next());
    else if (a == "--dot") opt.dot = true;
    else if (a == "--trace") opt.trace = true;
    else usage(argv[0]);
  }

  Rng rng(opt.seed);
  const Graph g = parseTopology(opt.topo, rng);
  std::printf("topology %s: n=%d m=%d Δ=%d diameter=%d\n",
              opt.topo.c_str(), g.nodeCount(), g.edgeCount(),
              g.maxDegree(), diameter(g));

  std::unique_ptr<Protocol> proto;
  std::function<bool()> legit;
  std::function<Orientation()> orient;
  if (opt.protocol == "dftno") {
    auto p = std::make_unique<Dftno>(g);
    auto* raw = p.get();
    legit = [raw] { return raw->isLegitimate(); };
    orient = [raw] { return raw->orientation(); };
    proto = std::move(p);
  } else if (opt.protocol == "stno") {
    auto p = std::make_unique<Stno>(g);
    auto* raw = p.get();
    legit = [raw] { return raw->isLegitimate(); };
    orient = [raw] { return raw->orientation(); };
    proto = std::move(p);
  } else if (opt.protocol == "stno-dfs") {
    auto p = std::make_unique<Stno>(g, portOrderDfsTree(g));
    auto* raw = p.get();
    legit = [raw] { return raw->isLegitimate(); };
    orient = [raw] { return raw->orientation(); };
    proto = std::move(p);
  } else {
    usage(argv[0]);
  }

  auto daemon = makeDaemon(parseDaemon(opt.daemon));
  proto->randomize(rng);
  Simulator sim(*proto, *daemon, rng);
  TraceRecorder trace(*proto);
  if (opt.trace)
    sim.setMoveObserver([&trace](const Move& m) { trace.record(m); });

  const RunStats stats = sim.runUntil(legit, opt.budget);
  if (!stats.converged) {
    std::printf("did NOT converge within %lld moves\n",
                static_cast<long long>(opt.budget));
    return 1;
  }
  std::printf("stabilized: %lld moves, %lld steps, %lld rounds under %s\n",
              static_cast<long long>(stats.moves),
              static_cast<long long>(stats.steps),
              static_cast<long long>(stats.rounds),
              daemon->name().c_str());
  const Orientation o = orient();
  std::printf("%s", renderOrientation(o).c_str());
  std::printf("SP1=%d SP2=%d locallyOriented=%d edgeSymmetry=%d\n",
              satisfiesSP1(o), satisfiesSP2(o), isLocallyOriented(o),
              hasEdgeSymmetry(o));

  if (opt.faults > 0) {
    FaultInjector inj(*proto);
    inj.corruptK(opt.faults, rng);
    const RunStats rec = sim.runUntil(legit, opt.budget);
    std::printf("after %d-node fault: %s in %lld moves\n", opt.faults,
                rec.converged ? "recovered" : "NOT recovered",
                static_cast<long long>(rec.moves));
  }

  if (opt.dot) {
    std::vector<std::string> labels;
    labels.reserve(static_cast<std::size_t>(g.nodeCount()));
    for (NodeId p = 0; p < g.nodeCount(); ++p)
      labels.push_back(std::to_string(o.nameOf(p)));
    std::printf("%s", toDot(g, labels).c_str());
  }
  if (opt.trace) std::printf("%s", trace.render().c_str());
  return 0;
}
