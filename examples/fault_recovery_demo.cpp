// Transient-fault recovery (the paper's §1.2 motivation): watch the
// oriented network absorb increasingly severe faults — single-node
// corruption, multi-node bursts, crash-resets, and a full adversarial
// scramble — recovering a valid orientation each time with no restart.
//
// Run:  ./fault_recovery_demo
#include <cstdio>

#include "core/daemon.hpp"
#include "core/fault.hpp"
#include "core/graph.hpp"
#include "core/scheduler.hpp"
#include "orientation/dftno.hpp"

int main() {
  using namespace ssno;

  const Graph g = Graph::lollipop(5, 7);  // clique of 5 with a 7-node tail
  Dftno dftno(g);
  Rng rng(99);
  RoundRobinDaemon daemon;
  Simulator sim(dftno, daemon, rng);
  FaultInjector inject(dftno);

  auto stabilizeAndReport = [&](const char* what) {
    const RunStats stats =
        sim.runUntil([&dftno] { return dftno.isLegitimate(); }, 50'000'000);
    std::printf("%-34s -> re-stabilized in %6lld moves; names valid: %s\n",
                what, static_cast<long long>(stats.moves),
                dftno.satisfiesSpecNow() ? "yes" : "NO");
  };

  std::printf("lollipop(5,7): %d processors, %d links\n\n", g.nodeCount(),
              g.edgeCount());

  dftno.randomize(rng);
  stabilizeAndReport("initial arbitrary configuration");

  inject.corruptNode(3, rng);
  stabilizeAndReport("corrupt 1 clique processor");

  inject.corruptNode(11, rng);
  stabilizeAndReport("corrupt the tail-end processor");

  inject.corruptK(4, rng);
  stabilizeAndReport("burst: corrupt 4 processors");

  inject.crashReset(6);
  stabilizeAndReport("crash-reset processor 6");

  inject.scrambleAll(rng);
  stabilizeAndReport("adversary scrambles EVERYTHING");

  std::printf("\nfinal orientation:\n%s",
              renderOrientation(dftno.orientation()).c_str());
  return 0;
}
